"""The 3-step switch pipeline (paper §7, Figs 7-8).

A Tagger-enabled switch processes a packet in three match-action steps:

1. **Ingress classification** — match the arriving tag, enqueue in the
   corresponding ingress priority queue (unknown tags -> lossy queue).
2. **Tag rewrite** — match ``(tag, InPort, OutPort)``, write the new tag
   (the safeguard default demotes to lossy).
3. **Egress classification** — match the *new* tag, enqueue in the
   corresponding egress priority queue.

Step 3 is the subtle one: by default hardware keeps a packet in the
egress queue of its *ingress* priority. When the tag (priority) changed
in step 2, a PAUSE from downstream for the new priority would then fail
to pause the queue the packet actually occupies, and the packet can be
dropped (Fig. 8a). Tagger must map the packet to the egress queue of its
new tag (Fig. 8b). :class:`PipelineConfig.decouple_egress` models both
behaviours so the simulator can demonstrate the failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.rules import RuleTable
from repro.core.tags import LOSSY_TAG
from repro.exceptions import CapacityError

#: Queue index reserved for lossy traffic on every port.
LOSSY_QUEUE = 0


@dataclass(frozen=True)
class QueueMap:
    """Tag -> priority-queue assignment for one switch (or the fabric).

    Queue 0 is always the lossy queue; lossless tags map to queues
    ``1..num_lossless``. The PFC standard caps priorities at 8 and
    commodity switches realistically support 2-3 lossless queues
    (paper §3.3); :func:`QueueMap.identity` enforces a configurable cap.
    """

    mapping: Tuple[Tuple[int, int], ...]  # sorted ((tag, queue), ...)

    @staticmethod
    def identity(num_tags: int, max_lossless_queues: int = 8) -> "QueueMap":
        """Tag ``t`` -> queue ``t`` for ``t`` in ``1..num_tags``."""
        if num_tags > max_lossless_queues:
            raise CapacityError(
                f"{num_tags} lossless tags exceed the switch capacity of "
                f"{max_lossless_queues} lossless queues"
            )
        return QueueMap(
            mapping=tuple((tag, tag) for tag in range(1, num_tags + 1))
        )

    def queue_for(self, tag: int) -> int:
        """Queue index for a tag; unknown tags go lossy (safeguard)."""
        if tag == LOSSY_TAG:
            return LOSSY_QUEUE
        for known_tag, queue in self.mapping:
            if known_tag == tag:
                return queue
        return LOSSY_QUEUE

    def is_lossless(self, tag: int) -> bool:
        return self.queue_for(tag) != LOSSY_QUEUE

    @property
    def num_lossless_queues(self) -> int:
        return len({queue for _, queue in self.mapping})

    def lossless_queues(self) -> Tuple[int, ...]:
        """All lossless queue indexes, ascending."""
        return tuple(sorted({queue for _, queue in self.mapping}))


@dataclass
class PipelineConfig:
    """Everything a simulated switch needs to run Tagger.

    Attributes:
        rule_table: Step-2 rewrite rules for this switch.
        queue_map: Steps 1 and 3 tag -> queue assignment.
        decouple_egress: True (correct Tagger behaviour, Fig. 8b) selects
            the egress queue by the *rewritten* tag; False reproduces the
            naive hardware default (Fig. 8a) that loses packets across
            priority transitions.
    """

    rule_table: RuleTable
    queue_map: QueueMap
    decouple_egress: bool = True

    def classify_ingress(self, tag: int) -> int:
        return self.queue_map.queue_for(tag)

    def rewrite(self, tag: int, in_port: int, out_port: int) -> int:
        return self.rule_table.lookup(tag, in_port, out_port)

    def classify_egress(self, old_tag: int, new_tag: int) -> int:
        if self.decouple_egress:
            return self.queue_map.queue_for(new_tag)
        return self.queue_map.queue_for(old_tag)
