"""Algorithm 2 — greedy tag minimization (paper §5.2).

Takes the brute-force tagged graph of Algorithm 1 and merges as many nodes
as possible into each new tag class, subject to the CBD-free constraint:
a class (= one lossless priority) may not contain a directed cycle. Nodes
are scanned in ascending brute-force tag order and the new tag only ever
moves forward, which preserves monotonicity (requirement R2); the sandbox
acyclicity check preserves per-class acyclicity (requirement R1).

Properties (paper §5.3):

- output tag count <= input tag count (never worse than brute force);
- optimal for BCube with default routing (k tags for a k-level BCube);
- 3 tags for 2000-switch Jellyfish with shortest-path ELPs;
- *not* optimal for Clos with bounce paths (Fig. 6): it can use 3 tags
  where the topology-aware scheme of :mod:`repro.core.clos` uses 2.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Sequence, Set

from repro.core.tags import INITIAL_TAG, PortKey, TaggedGraph, TNode
from repro.exceptions import TaggingError


class _Sandbox:
    """Incremental per-class acyclicity checker.

    Holds the directed graph of the tag class currently being filled,
    keyed by :class:`PortKey` (the class's tag is implicit). Supports the
    one query Algorithm 2 needs: *would* adding this node with these
    incoming edges close a directed cycle?
    """

    def __init__(self, ports: Iterable[PortKey] = ()) -> None:
        self.out: Dict[PortKey, Set[PortKey]] = {}
        self.ports: Set[PortKey] = set(ports)

    def copy(self) -> "_Sandbox":
        """Independent snapshot (for checkpoint/resume minimization)."""
        clone = _Sandbox(self.ports)
        clone.out = {port: set(succs) for port, succs in self.out.items()}
        return clone

    def would_cycle(self, port: PortKey, preds: Sequence[PortKey]) -> bool:
        """True iff adding edges ``pred -> port`` creates a directed cycle.

        A new cycle must traverse one of the new edges, i.e. reach some
        ``pred`` starting from ``port`` (a self-edge counts immediately).
        """
        if port in preds:
            return True
        targets = {p for p in preds if p in self.ports}
        if not targets or port not in self.ports:
            # Either no intra-class edges to add, or `port` is brand new
            # and therefore has no outgoing edges to close a cycle with.
            return False
        seen = {port}
        queue = deque([port])
        while queue:
            node = queue.popleft()
            for succ in self.out.get(node, ()):
                if succ in targets:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)
        return False

    def add(self, port: PortKey, preds: Sequence[PortKey]) -> None:
        self.ports.add(port)
        for pred in preds:
            if pred in self.ports:
                self.out.setdefault(pred, set()).add(port)


def greedy_minimize(bruteforce: TaggedGraph) -> TaggedGraph:
    """Run Algorithm 2 on a brute-force tagged graph.

    Returns a new :class:`TaggedGraph` over the same ports whose tag count
    is at most (usually much less than) the input's. Every brute-force
    node maps to exactly one output node and every brute-force edge to one
    output edge, so ELP coverage is preserved exactly.
    """
    if bruteforce.num_nodes == 0:
        raise TaggingError("cannot minimize an empty tagged graph")

    largest = bruteforce.max_tag
    new_tag: Dict[TNode, int] = {}
    current = INITIAL_TAG
    sandbox = _Sandbox()

    for old_tag in range(INITIAL_TAG, largest + 1):
        bumped: Set[PortKey] = set()
        for node in sorted(bruteforce.nodes_with_tag(old_tag)):
            port = node[0]
            intra_preds = [
                pred[0]
                for pred in bruteforce.predecessors(node)
                if new_tag.get(pred) == current
            ]
            if sandbox.would_cycle(port, intra_preds):
                new_tag[node] = current + 1
                bumped.add(port)
            else:
                sandbox.add(port, intra_preds)
                new_tag[node] = current
        if bumped:
            # Close the current class; the bumped ports seed the next one.
            # They all came from the same brute-force tag, so no edges run
            # between them yet and the fresh sandbox starts acyclic.
            current += 1
            sandbox = _Sandbox(bumped)

    result = TaggedGraph()
    for node in bruteforce.nodes:
        result.add_node((node[0], new_tag[node]))
    for src, dst in bruteforce.edges():
        result.add_edge((src[0], new_tag[src]), (dst[0], new_tag[dst]))
    return result


def tag_mapping(
    bruteforce: TaggedGraph, minimized: TaggedGraph
) -> Dict[TNode, TNode]:
    """Recompute the node mapping between a brute-force graph and its
    minimized counterpart by re-running the greedy pass.

    Provided for diagnostics/tests; :func:`greedy_minimize` is
    deterministic so the mapping is well-defined.
    """
    largest = bruteforce.max_tag
    new_tag: Dict[TNode, int] = {}
    current = INITIAL_TAG
    sandbox = _Sandbox()
    for old_tag in range(INITIAL_TAG, largest + 1):
        bumped: Set[PortKey] = set()
        for node in sorted(bruteforce.nodes_with_tag(old_tag)):
            port = node[0]
            intra_preds = [
                pred[0]
                for pred in bruteforce.predecessors(node)
                if new_tag.get(pred) == current
            ]
            if sandbox.would_cycle(port, intra_preds):
                new_tag[node] = current + 1
                bumped.add(port)
            else:
                sandbox.add(port, intra_preds)
                new_tag[node] = current
        if bumped:
            current += 1
            sandbox = _Sandbox(bumped)
    mapping = {node: (node[0], new_tag[node]) for node in bruteforce.nodes}
    for target in mapping.values():
        if not minimized.has_node(target):
            raise TaggingError(
                f"mapping target {target} missing from minimized graph; "
                "was it produced by greedy_minimize on this input?"
            )
    return mapping
