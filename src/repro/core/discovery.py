"""ELP discovery from live routing state (paper §6, "Specifying ELP").

"As long as routing is traffic agnostic, it is usually easy to determine
what routes the routing algorithm will compute... If an SDN controller is
used, the controller algorithm can be used to generate the paths under a
variety of simulated conditions."

This module is that controller-side tooling: trace the actual forwarding
tables (across ECMP hash space) to enumerate the paths traffic will take,
optionally across a set of simulated failure scenarios, and produce a
validated :class:`~repro.core.elp.ElpSet` ready for the tagging
algorithms. Looping traces (transient micro-loops) are excluded — ELP
membership requires loop-freedom.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.elp import ElpSet
from repro.exceptions import RoutingError
from repro.routing.base import ForwardingTable, Path, as_path, is_loop_free
from repro.topology.base import Topology

#: Builds (or rebuilds) forwarding state for the current topology state.
TableFactory = Callable[[Topology], ForwardingTable]

LinkKey = Tuple[str, str]


def trace_elp(
    topo: Topology,
    table: ForwardingTable,
    endpoints: Optional[Sequence[str]] = None,
    hashes: Iterable[int] = range(8),
    max_hops: int = 32,
) -> ElpSet:
    """Enumerate the host-to-host paths the given tables actually realize.

    Args:
        topo: The fabric.
        table: Forwarding state to trace.
        endpoints: Host pairs to cover (default: all hosts).
        hashes: ECMP hash samples per pair — each may take a different
            ECMP member at each switch; 8 samples cover small groups well.
        max_hops: Loop cutoff; longer traces are treated as loops.

    Loops and black holes (missing routes) are skipped, not errors: the
    ELP describes what must be lossless, and a transiently looping route
    has no business in it.
    """
    if endpoints is None:
        endpoints = sorted(topo.hosts)
    elp = ElpSet(topo, description="traced from forwarding tables")
    seen: Set[Path] = set()
    for src in endpoints:
        try:
            first_switch = topo.host_tor(src)
        except Exception:
            continue
        for dst in endpoints:
            if src == dst:
                continue
            for flow_hash in hashes:
                try:
                    core, completed = table.trace(
                        first_switch, dst, flow_hash=flow_hash, max_hops=max_hops
                    )
                except RoutingError:
                    continue
                if not completed:
                    continue
                path = as_path((src,) + tuple(core))
                if path in seen or not is_loop_free(path):
                    continue
                seen.add(path)
                elp.add(path)
    return elp


def elp_under_failures(
    topo: Topology,
    table_factory: TableFactory,
    scenarios: Iterable[Iterable[LinkKey]],
    endpoints: Optional[Sequence[str]] = None,
    hashes: Iterable[int] = range(8),
    include_healthy: bool = True,
) -> ElpSet:
    """Union of traced ELPs across simulated failure scenarios.

    For each scenario the listed links are failed, forwarding state is
    rebuilt via ``table_factory`` (model converged routing; compose with
    :func:`repro.routing.reroute.apply_local_reroute` inside the factory
    to model transients), traces are collected, and the topology is
    restored. The result is the operator's "paths that must stay lossless
    no matter which of these failures happens".
    """
    merged = ElpSet(topo, description="traced across failure scenarios")
    seen: Set[Path] = set()

    def absorb(elp: ElpSet) -> None:
        for path in elp:
            if path not in seen:
                seen.add(path)
                merged.paths.append(path)

    if include_healthy:
        topo.restore_all()
        absorb(trace_elp(topo, table_factory(topo), endpoints, hashes))
    for scenario in scenarios:
        topo.restore_all()
        for a, b in scenario:
            topo.fail_link(a, b)
        absorb(trace_elp(topo, table_factory(topo), endpoints, hashes))
    topo.restore_all()
    return merged


def single_link_failure_scenarios(
    topo: Topology, switch_links_only: bool = True
) -> List[List[LinkKey]]:
    """Every single-link failure — the classic planning sweep."""
    scenarios: List[List[LinkKey]] = []
    for link in topo.iter_links(include_failed=True):
        if switch_links_only and not (
            topo.node(link.a).is_switch and topo.node(link.b).is_switch
        ):
            continue
        scenarios.append([link.key])
    return scenarios
