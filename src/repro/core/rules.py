"""Match-action rule generation (paper §5.2 "Number of rules" and §7).

A Tagger deployment is, per switch, a rule list::

    (Tag, InPort, OutPort)  ->  NewTag

plus the tag -> priority-queue mapping and a final safeguard rule that
demotes any unmatched packet to the lossy class ("this rule is always the
last one in the TCAM rule list", paper footnote 3).

Rules are derived from a tagged graph: the edge ``(Ai, x) -> (Bj, y)``
becomes switch A's rule ``(x, i, port-toward-B) -> y``. Rules form a
*function* of the match key; if two edges demand different rewrites for
the same key (possible in principle after greedy minimization, see
:func:`rules_from_tagged_graph`), the conflict is resolved toward the
larger tag — safety (deadlock freedom) is preserved, a few packets may be
demoted to lossy earlier than strictly necessary, and the effective graph
can be re-verified via :func:`rules_to_tagged_graph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.tags import INITIAL_TAG, LOSSY_TAG, TaggedGraph
from repro.exceptions import RuleError
from repro.topology.base import Topology

MatchKey = Tuple[int, int, int]  # (tag, in_port, out_port)


@dataclass(frozen=True)
class MatchActionRule:
    """One uncompressed rule: exact match on (tag, in_port, out_port)."""

    tag: int
    in_port: int
    out_port: int
    new_tag: int

    @property
    def key(self) -> MatchKey:
        return (self.tag, self.in_port, self.out_port)

    @property
    def demotes(self) -> bool:
        return self.new_tag == LOSSY_TAG


#: Signature for a functional fallback policy (e.g. ClosTagger.rewrite).
RewriteFn = Callable[[str, int, int, int], int]


@dataclass
class RuleTable:
    """Per-switch rewrite rules with lossy-demotion default.

    ``lookup`` implements the full TCAM semantics: explicit rule first,
    then the optional functional policy (used by topology-aware taggers to
    avoid materializing dense tables), then the safeguard default
    (:data:`LOSSY_TAG`).
    """

    switch: str
    rules: Dict[MatchKey, int] = field(default_factory=dict)
    policy: Optional[RewriteFn] = None

    def add(self, rule: MatchActionRule) -> None:
        existing = self.rules.get(rule.key)
        if existing is not None and existing != rule.new_tag:
            raise RuleError(
                f"conflicting rule at {self.switch!r} for {rule.key}: "
                f"{existing} vs {rule.new_tag}"
            )
        self.rules[rule.key] = rule.new_tag

    def lookup(self, tag: int, in_port: int, out_port: int) -> int:
        """New tag for a transiting packet (LOSSY_TAG when unmatched)."""
        if tag == LOSSY_TAG:
            return LOSSY_TAG
        hit = self.rules.get((tag, in_port, out_port))
        if hit is not None:
            return hit
        if self.policy is not None:
            return self.policy(self.switch, in_port, out_port, tag)
        return LOSSY_TAG

    def __len__(self) -> int:
        return len(self.rules)

    def as_rules(self) -> List[MatchActionRule]:
        return sorted(
            (
                MatchActionRule(tag, in_port, out_port, new_tag)
                for (tag, in_port, out_port), new_tag in self.rules.items()
            ),
            key=lambda r: r.key,
        )


@dataclass
class RuleGenerationReport:
    """Outcome of :func:`rules_from_tagged_graph`."""

    tables: Dict[str, RuleTable]
    conflicts: List[Tuple[str, MatchKey, int, int]] = field(default_factory=list)

    @property
    def total_rules(self) -> int:
        return sum(len(table) for table in self.tables.values())

    def rules_per_switch(self) -> Dict[str, int]:
        return {switch: len(table) for switch, table in self.tables.items()}

    @property
    def max_rules_per_switch(self) -> int:
        if not self.tables:
            return 0
        return max(len(table) for table in self.tables.values())


def rules_from_tagged_graph(
    topo: Topology,
    graph: TaggedGraph,
    on_conflict: str = "max",
) -> RuleGenerationReport:
    """Translate tagged-graph edges into per-switch rule tables.

    Args:
        topo: Topology (to resolve egress port numbers).
        graph: A verified tagged graph.
        on_conflict: ``"max"`` keeps the larger rewrite tag (safe: tags
            stay monotone, the losing edge's packets may be demoted to
            lossy downstream); ``"error"`` raises :class:`RuleError`.

    Conflicts are recorded in the report either way.
    """
    if on_conflict not in ("max", "error"):
        raise RuleError(f"unknown conflict policy {on_conflict!r}")
    tables: Dict[str, RuleTable] = {}
    conflicts: List[Tuple[str, MatchKey, int, int]] = []
    for (src_port, src_tag), (dst_port, dst_tag) in graph.edges():
        switch, in_port = src_port
        dst_switch, _ = dst_port
        out_port = topo.port_to(switch, dst_switch)
        key = (src_tag, in_port, out_port)
        table = tables.setdefault(switch, RuleTable(switch=switch))
        existing = table.rules.get(key)
        if existing is not None and existing != dst_tag:
            conflicts.append((switch, key, existing, dst_tag))
            if on_conflict == "error":
                raise RuleError(
                    f"conflicting rewrites at {switch!r} {key}: "
                    f"{existing} vs {dst_tag}"
                )
            table.rules[key] = max(existing, dst_tag)
        else:
            table.rules[key] = dst_tag
    return RuleGenerationReport(tables=tables, conflicts=conflicts)


def rules_to_tagged_graph(
    topo: Topology, tables: Dict[str, RuleTable]
) -> TaggedGraph:
    """Reconstruct the *effective* tagged graph a rule deployment induces.

    Every explicit rule whose egress faces a switch contributes one edge;
    the node set is exactly what the rules can produce. Use this to
    re-verify deadlock freedom after conflict resolution or manual rule
    edits — it reflects deployed reality rather than design intent.
    """
    graph = TaggedGraph()
    for switch, table in tables.items():
        for (tag, in_port, out_port), new_tag in table.rules.items():
            if new_tag == LOSSY_TAG:
                continue
            src = ((switch, in_port), tag)
            peer = topo.peer_on_port(switch, out_port)
            if not topo.node(peer).is_switch:
                graph.add_node(src)
                continue
            peer_in = topo.port_to(peer, switch)
            graph.add_edge(src, ((peer, peer_in), new_tag))
    return graph


def materialize_policy_rules(
    topo: Topology,
    switch: str,
    policy: RewriteFn,
    tags: Sequence[int],
    include_host_ports: bool = True,
) -> RuleTable:
    """Expand a functional policy into explicit rules for one switch.

    Enumerates all (tag, in_port, out_port) combinations over the switch's
    ports; entries whose policy answer is :data:`LOSSY_TAG` are omitted
    (the safeguard default already demotes). Used to count hardware rules
    for topology-aware taggers and to feed the TCAM compressor.
    """
    table = RuleTable(switch=switch)
    ports = topo.ports(switch)
    for in_port, in_peer in ports.items():
        in_is_host = topo.node(in_peer).is_host
        for out_port, out_peer in ports.items():
            if in_port == out_port:
                continue
            for tag in tags:
                if in_is_host and tag != INITIAL_TAG:
                    continue  # hosts inject fresh packets only
                new_tag = policy(switch, in_port, out_port, tag)
                if new_tag == LOSSY_TAG:
                    continue
                if not include_host_ports and topo.node(out_peer).is_host:
                    continue
                table.rules[(tag, in_port, out_port)] = new_tag
    return table


@dataclass(frozen=True)
class RuleDiff:
    """Difference between two rule deployments for one switch.

    Used to plan incremental updates (paper §6 "Topology changes"):
    ``added`` rules must be installed, ``removed`` deleted, ``changed``
    atomically replaced. An empty diff means the switch needs no touch.
    """

    switch: str
    added: Tuple[Tuple[MatchKey, int], ...]
    removed: Tuple[Tuple[MatchKey, int], ...]
    changed: Tuple[Tuple[MatchKey, int, int], ...]  # key, old, new

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    @property
    def touch_count(self) -> int:
        return len(self.added) + len(self.removed) + len(self.changed)


def diff_tables(
    before: Dict[str, RuleTable], after: Dict[str, RuleTable]
) -> Dict[str, RuleDiff]:
    """Per-switch rule diff between two deployments.

    Switches present in only one deployment contribute pure adds/removes.
    Only non-empty diffs are returned.
    """
    diffs: Dict[str, RuleDiff] = {}
    for switch in sorted(set(before) | set(after)):
        old = before.get(switch).rules if switch in before else {}
        new = after.get(switch).rules if switch in after else {}
        added = tuple(
            (key, new[key]) for key in sorted(set(new) - set(old))
        )
        removed = tuple(
            (key, old[key]) for key in sorted(set(old) - set(new))
        )
        changed = tuple(
            (key, old[key], new[key])
            for key in sorted(set(old) & set(new))
            if old[key] != new[key]
        )
        diff = RuleDiff(
            switch=switch, added=added, removed=removed, changed=changed
        )
        if not diff.is_empty:
            diffs[switch] = diff
    return diffs


def canonical_tables(
    tables: Dict[str, RuleTable],
) -> Dict[str, List[List[int]]]:
    """JSON-stable canonical form of a rule deployment.

    Per switch (sorted), a sorted list of ``[tag, in_port, out_port,
    new_tag]`` rows. Switches with no explicit rules are omitted, so two
    deployments that demote identically compare equal regardless of
    whether empty tables were materialized. This is the format the
    golden snapshot tests freeze and the byte-identity oracle compares.
    """
    canonical: Dict[str, List[List[int]]] = {}
    for switch in sorted(tables):
        rules = tables[switch].rules
        if not rules:
            continue
        canonical[switch] = [
            [tag, in_port, out_port, rules[(tag, in_port, out_port)]]
            for tag, in_port, out_port in sorted(rules)
        ]
    return canonical


def tables_equal(
    a: Dict[str, RuleTable], b: Dict[str, RuleTable]
) -> bool:
    """True iff two deployments install byte-identical explicit rules."""
    return canonical_tables(a) == canonical_tables(b)


def coverage_report(
    topo: Topology,
    tables: Dict[str, RuleTable],
    paths: Iterable[Sequence[str]],
    initial_tag: int = INITIAL_TAG,
) -> Tuple[int, int, List[Tuple[Tuple[str, ...], int]]]:
    """How many of ``paths`` stay lossless end-to-end under ``tables``.

    Simulates the tag rewrite along each path. Returns
    ``(lossless_count, total, demoted)`` where ``demoted`` lists each
    demoted path with the hop index at which it lost losslessness.
    """
    lossless = 0
    total = 0
    demoted: List[Tuple[Tuple[str, ...], int]] = []
    for path in paths:
        total += 1
        tag = initial_tag
        failed_at = -1
        for i in range(1, len(path) - 1):
            prev_node, node, next_node = path[i - 1], path[i], path[i + 1]
            if not topo.node(node).is_switch:
                continue
            if topo.node(next_node).is_host:
                # Delivery hop: the packet keeps its tag onto the host
                # link (no rewrite rule needed; mirrors the simulator).
                continue
            table = tables.get(node)
            if table is None:
                failed_at = i
                break
            tag = table.lookup(
                tag,
                topo.port_to(node, prev_node),
                topo.port_to(node, next_node),
            )
            if tag == LOSSY_TAG:
                failed_at = i
                break
        if failed_at == -1:
            lossless += 1
        else:
            demoted.append((tuple(path), failed_at))
    return lossless, total, demoted
