"""High-level planning API: from topology + ELP to a deployable Tagger plan.

:class:`TaggerPlan` is the main entry point of the library. It bundles:

- the tagged graph (design intent),
- per-switch rule tables + queue map (deployment artifacts),
- verification (Theorem 5.1) and ELP-coverage reports,
- per-switch pipeline configs for the simulator.

Three constructors mirror the paper:

- :meth:`TaggerPlan.from_elp` — Algorithm 1 (+ optional Algorithm 2) on an
  explicit ELP, for any topology;
- :meth:`TaggerPlan.for_clos` — the topology-aware Clos scheme (§4.3),
  no enumeration needed;
- :meth:`TaggerPlan.for_multiclass_clos` — §6's staggered classes.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, Optional, Sequence

from repro.core.bruteforce import bruteforce_tagging
from repro.core.clos import ClosTagger
from repro.core.determinize import deterministic_minimize
from repro.core.elp import ElpSet, PairwiseElpProvider
from repro.core.greedy import greedy_minimize
from repro.core.symmetry import STRATEGY_SYMMETRY, certify, check_strategy
from repro.core.multiclass import MultiClassClosTagger, TrafficClass
from repro.core.pipeline import PipelineConfig, QueueMap
from repro.core.rules import (
    RuleGenerationReport,
    RuleTable,
    coverage_report,
    materialize_policy_rules,
    rules_from_tagged_graph,
    rules_to_tagged_graph,
)
from repro.core.tags import INITIAL_TAG, TaggedGraph, ingress_hops
from repro.core.verification import VerificationReport, assert_deadlock_free, verify_tagged_graph
from repro.exceptions import TaggingError
from repro.perf.timing import StageTimer
from repro.topology.base import Topology


def _timed_stream(
    paths: Iterator[Sequence[str]],
    timer: StageTimer,
    counter: Dict[str, int],
) -> Iterator[Sequence[str]]:
    """Meter a lazy path stream consumed inside another timed stage.

    Algorithm 1 pulls the provider's paths from *inside* the
    ``bruteforce`` stage, so enumeration time would otherwise be charged
    to tagging. This wrapper measures each pull and, on close, moves the
    total from ``bruteforce`` to ``elp`` in one batched adjustment
    (per-path ``timer.add`` calls would cost real time at hyperscale).
    """
    pulled = 0.0
    it = iter(paths)
    try:
        while True:
            start = time.perf_counter()
            try:
                path = next(it)
            except StopIteration:
                return
            pulled += time.perf_counter() - start
            counter["paths"] += 1
            yield path
    finally:
        timer.add("elp", pulled)
        timer.add("bruteforce", -pulled)


@dataclass
class TaggerPlan:
    """A complete, verified Tagger deployment for one fabric."""

    topo: Topology
    graph: TaggedGraph
    tables: Dict[str, RuleTable]
    queue_map: QueueMap
    description: str = ""
    rule_report: Optional[RuleGenerationReport] = None
    #: Provenance of the plan (enumeration strategy, certificate status,
    #: path counts); informational only — never consulted by the
    #: pipeline, so byte-identity of plans is judged on graph + tables.
    meta: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_elp(
        topo: Topology,
        elp: Iterable[Sequence[str]],
        minimize: str = "deterministic",
        max_lossless_queues: int = 8,
        on_conflict: str = "max",
        timer: Optional[StageTimer] = None,
        workers: int = 1,
        seed: int = 0,
    ) -> "TaggerPlan":
        """Generic construction: Algorithm 1, then tag minimization.

        Args:
            minimize: ``"deterministic"`` (default) runs the
                rule-realizable merge of :mod:`repro.core.determinize`;
                ``"paper"`` runs Algorithm 2 exactly as printed (rule
                conflicts, if any, resolved toward the larger tag);
                ``"off"`` deploys the brute-force tags directly.
            timer: Optional :class:`~repro.perf.timing.StageTimer`; when
                given, records wall-clock per pipeline stage
                (``bruteforce``, ``minimize``, ``verify``, ``queue-map``)
                for the perf baselines in ``BENCH_pipeline.json``.
            workers: Fan the verify stage's per-tag acyclicity checks
                out over this many forked processes (> 1); the plan is
                identical at every worker count
                (:mod:`repro.core.parallel`).
            seed: Shuffles parallel dispatch order only; result-neutral.

        Raises :class:`~repro.exceptions.CapacityError` if the resulting
        tag count exceeds ``max_lossless_queues`` — the paper's practical
        constraint (§3.3).
        """
        if minimize not in ("deterministic", "paper", "off"):
            raise TaggingError(f"unknown minimize mode {minimize!r}")
        if timer is None:
            timer = StageTimer()
        with timer.stage("bruteforce"):
            graph = bruteforce_tagging(topo, elp)
        return TaggerPlan._finish(
            topo,
            graph,
            minimize=minimize,
            max_lossless_queues=max_lossless_queues,
            on_conflict=on_conflict,
            timer=timer,
            workers=workers,
            seed=seed,
        )

    @staticmethod
    def _finish(
        topo: Topology,
        graph: TaggedGraph,
        minimize: str,
        max_lossless_queues: int,
        on_conflict: str,
        timer: StageTimer,
        workers: int = 1,
        seed: int = 0,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "TaggerPlan":
        """Minimize + verify + queue-map a brute-force tagged graph.

        Shared tail of every Algorithm-1 construction path — explicit
        ELP, streamed provider, or symmetry-certified closed form — so
        all of them compile byte-identical plans from equal graphs.
        """
        rule_report: Optional[RuleGenerationReport] = None
        if minimize == "deterministic":
            with timer.stage("minimize"):
                result = deterministic_minimize(topo, graph)
            tables = result.tables
            graph = result.graph
            with timer.stage("verify"):
                assert_deadlock_free(graph, workers=workers, seed=seed)
        else:
            with timer.stage("minimize"):
                if minimize == "paper":
                    graph = greedy_minimize(graph)
            with timer.stage("verify"):
                assert_deadlock_free(graph, workers=workers, seed=seed)
                rule_report = rules_from_tagged_graph(
                    topo, graph, on_conflict=on_conflict
                )
                tables = rule_report.tables
                if rule_report.conflicts:
                    # Conflict resolution changed semantics; re-verify
                    # what the rules actually deploy.
                    effective = rules_to_tagged_graph(topo, tables)
                    assert_deadlock_free(
                        effective, workers=workers, seed=seed
                    )
                    graph = effective
        with timer.stage("queue-map"):
            queue_map = QueueMap.identity(graph.max_tag, max_lossless_queues)
        return TaggerPlan(
            topo=topo,
            graph=graph,
            tables=tables,
            queue_map=queue_map,
            description=f"algorithm-1+{minimize} ({graph.num_tags} tags)",
            rule_report=rule_report,
            meta=dict(meta or {}),
        )

    @staticmethod
    def from_provider(
        topo: Topology,
        provider: PairwiseElpProvider,
        minimize: str = "deterministic",
        max_lossless_queues: int = 8,
        on_conflict: str = "max",
        extra_paths: Sequence[Sequence[str]] = (),
        timer: Optional[StageTimer] = None,
        strategy: str = STRATEGY_SYMMETRY,
        workers: int = 1,
        seed: int = 0,
    ) -> "TaggerPlan":
        """From-scratch plan via a pairwise ELP provider (+ pinned extras).

        This is the from-scratch counterpart of
        :class:`repro.core.replan.IncrementalPlanner` — identical input
        surface, so the two can be compared byte for byte. The ``elp``
        stage (path enumeration) is timed separately from the
        :meth:`from_elp` stages.

        Args:
            strategy: ``"symmetry"`` (default) first tries to certify
                the topology/provider pair as a healthy symmetric Clos
                (:mod:`repro.core.symmetry`); on success the tagged
                graph is built in closed form from one representative
                per pod/spine equivalence class, skipping per-pair path
                enumeration entirely. When certification fails — any
                asymmetry: failed links, drained endpoints, a
                non-up-down provider — it degrades to ``"exhaustive"``,
                which streams the provider's paths lazily into
                Algorithm 1. Both paths compile byte-identical plans.
            workers: Verify-stage fan-out (see :meth:`from_elp`).
            seed: Parallel dispatch shuffle; result-neutral.
        """
        check_strategy(strategy)
        if timer is None:
            timer = StageTimer()
        cert = None
        if strategy == STRATEGY_SYMMETRY:
            with timer.stage("certify"):
                cert = certify(topo, provider)
        if cert is not None:
            with timer.stage("elp"):
                extras = ElpSet(topo, description=provider.description)
                extras.extend(extra_paths)
            with timer.stage("bruteforce"):
                graph = TaggedGraph()
                cert.populate_graph(graph)
                saw_path = graph.num_nodes > 0
                for path in extras:
                    tag = INITIAL_TAG
                    last_node = None
                    for port_key in ingress_hops(topo, path):
                        node = (port_key, tag)
                        graph.add_node(node)
                        if last_node is not None:
                            graph.add_edge(last_node, node)
                        last_node = node
                        tag += 1
                    saw_path = True
                if not saw_path:
                    raise TaggingError("empty ELP: nothing to tag")
            meta: Dict[str, Any] = {
                "strategy": strategy,
                "certified": True,
                "elp_paths": cert.path_count() + len(extras),
            }
            return TaggerPlan._finish(
                topo,
                graph,
                minimize=minimize,
                max_lossless_queues=max_lossless_queues,
                on_conflict=on_conflict,
                timer=timer,
                workers=workers,
                seed=seed,
                meta=meta,
            )
        # Exhaustive enumeration (explicit, or symmetry degraded):
        # stream the provider's paths lazily into Algorithm 1 so the
        # full path list is never materialized.
        with timer.stage("elp"):
            extras = ElpSet(topo, description=provider.description)
            extras.extend(extra_paths)
        counter = {"paths": 0}
        stream = _timed_stream(provider.iter_paths(topo), timer, counter)
        with timer.stage("bruteforce"):
            graph = bruteforce_tagging(
                topo,
                itertools.chain(stream, extras.paths),
                require_loop_free=False,
            )
        meta = {
            "strategy": strategy,
            "certified": False,
            "elp_paths": counter["paths"] + len(extras),
        }
        return TaggerPlan._finish(
            topo,
            graph,
            minimize=minimize,
            max_lossless_queues=max_lossless_queues,
            on_conflict=on_conflict,
            timer=timer,
            workers=workers,
            seed=seed,
            meta=meta,
        )

    @staticmethod
    def for_clos(
        topo: Topology,
        max_bounces: int = 1,
        max_lossless_queues: int = 8,
        materialize: bool = True,
    ) -> "TaggerPlan":
        """Topology-aware Clos plan: ``max_bounces + 1`` lossless tags.

        With ``materialize=False`` the rule tables stay functional
        (policy-backed) — preferable for very large fabrics.
        """
        tagger = ClosTagger(topo, max_bounces=max_bounces)
        graph = tagger.tagged_graph()
        assert_deadlock_free(graph)
        tags = list(range(INITIAL_TAG, tagger.max_lossless_tag + 1))
        tables: Dict[str, RuleTable] = {}
        for switch in topo.switches:
            if materialize:
                tables[switch] = materialize_policy_rules(
                    topo, switch, tagger.rewrite, tags
                )
            else:
                tables[switch] = RuleTable(switch=switch, policy=tagger.rewrite)
        queue_map = QueueMap.identity(
            tagger.num_lossless_tags, max_lossless_queues
        )
        return TaggerPlan(
            topo=topo,
            graph=graph,
            tables=tables,
            queue_map=queue_map,
            description=f"clos k={max_bounces} ({tagger.num_lossless_tags} tags)",
        )

    @staticmethod
    def for_multiclass_clos(
        topo: Topology,
        classes: Sequence[TrafficClass],
        max_lossless_queues: int = 8,
    ) -> "TaggerPlan":
        """§6's staggered multi-class plan over a layered fabric."""
        tagger = MultiClassClosTagger(topo, classes)
        graph = tagger.tagged_graph()
        assert_deadlock_free(graph)
        tags = list(range(INITIAL_TAG, INITIAL_TAG + tagger.num_lossless_tags))
        tables = {
            switch: materialize_policy_rules(topo, switch, tagger.rewrite, tags)
            for switch in topo.switches
        }
        queue_map = QueueMap.identity(tagger.num_lossless_tags, max_lossless_queues)
        return TaggerPlan(
            topo=topo,
            graph=graph,
            tables=tables,
            queue_map=queue_map,
            description=(
                f"multiclass clos ({len(classes)} classes, "
                f"{tagger.num_lossless_tags} tags)"
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_lossless_queues(self) -> int:
        return self.queue_map.num_lossless_queues

    @property
    def total_rules(self) -> int:
        return sum(len(table) for table in self.tables.values())

    @property
    def max_rules_per_switch(self) -> int:
        return max((len(table) for table in self.tables.values()), default=0)

    def verify(self) -> VerificationReport:
        """Re-run Theorem 5.1 verification on the plan's tagged graph."""
        return verify_tagged_graph(self.graph)

    def coverage(
        self, paths: Iterable[Sequence[str]], initial_tag: int = INITIAL_TAG
    ) -> float:
        """Fraction of ``paths`` that stay lossless end-to-end."""
        lossless, total, _ = coverage_report(
            self.topo, self.tables, paths, initial_tag=initial_tag
        )
        if total == 0:
            raise TaggingError("coverage over an empty path set")
        return lossless / total

    def pipeline_config(self, switch: str, decouple_egress: bool = True) -> PipelineConfig:
        """Per-switch config consumed by the simulator."""
        table = self.tables.get(switch)
        if table is None:
            table = RuleTable(switch=switch)
        return PipelineConfig(
            rule_table=table,
            queue_map=self.queue_map,
            decouple_egress=decouple_egress,
        )

    def fit_to_queues(self, max_lossless_queues: int) -> "TaggerPlan":
        """Return a new plan fused into a smaller queue budget.

        Safely merges adjacent tag classes (see
        :mod:`repro.core.queuefit`) and renumbers the rule tables to
        match. Raises :class:`~repro.exceptions.CapacityError` when the
        ELP genuinely does not fit the hardware.
        """
        from repro.core.queuefit import fit_to_queues, remap_tables

        fused, mapping = fit_to_queues(self.graph, max_lossless_queues)
        assert_deadlock_free(fused)
        return TaggerPlan(
            topo=self.topo,
            graph=fused,
            tables=remap_tables(self.tables, mapping),
            queue_map=QueueMap.identity(
                fused.max_tag if fused.nodes else 0, max_lossless_queues
            ),
            description=f"{self.description} fused to {fused.num_tags} tags",
            rule_report=self.rule_report,
        )

    def summary(self) -> str:
        return (
            f"TaggerPlan[{self.description}]: "
            f"{self.num_lossless_queues} lossless queue(s), "
            f"{self.total_rules} rules total, "
            f"max {self.max_rules_per_switch} rules/switch"
        )
