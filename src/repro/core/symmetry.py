"""Symmetry-aware ELP enumeration for pod-regular Clos fabrics.

ELP enumeration dominates from-scratch planning cost: on the 64-ToR
benchmark Clos, ~98% of pipeline wall time is spent running the up-down
BFS for all 4032 ordered ToR pairs and materializing ~231k paths, even
though the fabric is made of eight *isomorphic* pods. This module
exploits that regularity the way production routing engines configure
structured fabrics: certify once, in O(links), that the topology is a
disjoint union of complete-bipartite ToR/leaf pods whose leaves attach
to pairwise-disjoint spine groups, then answer every per-pair query —
and build the Algorithm-1 tagged graph — from the closed form instead
of per-path search.

Soundness contract (property-tested in
``tests/properties/test_symmetry_equivalence.py`` and fuzz-checked as
the ``symmetry-divergence`` invariant):

- :meth:`SymmetryCertificate.pair_paths` returns *byte-identical*
  tuples to ``UpDownElpProvider.pair_paths`` for every ordered pair;
- :meth:`SymmetryCertificate.populate_graph` emits exactly the node and
  edge set Algorithm 1 derives from the exhaustive path set (the
  :class:`~repro.core.tags.TaggedGraph` is set-structured, so equality
  is order-free);
- :func:`certify` returns ``None`` — degrading callers to exhaustive
  enumeration — on *any* structural irregularity: failed links,
  unlayered or >3-layer switches, incomplete pods, or spine groups
  shared between leaf colors.

The certificate deliberately ignores links up-down routing cannot see
(ToR-ToR express links, same-layer links, layer-skipping links): they
change no up-down path, so certifying past them is exact, not an
approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.core.tags import TaggedGraph
from repro.exceptions import TaggingError
from repro.routing.base import Path
from repro.topology.base import Topology
from repro.topology.clos import LEAF_LAYER, SPINE_LAYER, TOR_LAYER

#: Enumeration strategies accepted by the planner surfaces.
STRATEGY_SYMMETRY = "symmetry"
STRATEGY_EXHAUSTIVE = "exhaustive"
STRATEGIES = (STRATEGY_EXHAUSTIVE, STRATEGY_SYMMETRY)


def check_strategy(strategy: str) -> str:
    if strategy not in STRATEGIES:
        raise TaggingError(
            f"unknown enumeration strategy {strategy!r}; "
            f"expected one of {STRATEGIES}"
        )
    return strategy


@dataclass(frozen=True)
class Pod:
    """One complete-bipartite ToR/leaf component of a certified fabric.

    ``leaves_by_color`` maps a spine-group index (position in the
    certificate's ``spine_groups``) to the pod's leaves wired to that
    group; leaves with no spine uplinks appear in ``leaves`` only.
    """

    tors: Tuple[str, ...]
    leaves: Tuple[str, ...]
    leaves_by_color: Tuple[Tuple[int, Tuple[str, ...]], ...]

    def color_leaves(self, color: int) -> Tuple[str, ...]:
        for idx, leaves in self.leaves_by_color:
            if idx == color:
                return leaves
        return ()


@dataclass
class SymmetryCertificate:
    """Proof object that closed-form up-down enumeration is exact here.

    Holds the pod decomposition and spine coloring of a certified
    topology plus the closed forms derived from them. Valid only for
    the exact topology state it was certified against — the planner
    re-certifies after every applied delta.
    """

    topo: Topology
    pods: Tuple[Pod, ...]
    spine_groups: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        self._pod_index: Dict[str, int] = {}
        for idx, pod in enumerate(self.pods):
            for tor in pod.tors:
                self._pod_index[tor] = idx

    # ------------------------------------------------------------------
    # Closed-form per-pair enumeration
    # ------------------------------------------------------------------
    def pair_paths(self, src: str, dst: str) -> Tuple[Path, ...]:
        """Byte-identical to ``UpDownElpProvider.pair_paths(topo, ...)``."""
        if src == dst:
            return ((src,),)
        p = self._pod_index.get(src)
        q = self._pod_index.get(dst)
        if p is None or q is None:
            return ()
        if p == q:
            # Same pod: every pod leaf is a lowest common ancestor, and
            # shortest-only stops at the leaf layer. Leaves are sorted,
            # so the (src, leaf, dst) tuples come out already sorted.
            return tuple((src, leaf, dst) for leaf in self.pods[p].leaves)
        paths: List[Path] = []
        for color, spines in enumerate(self.spine_groups):
            up = self.pods[p].color_leaves(color)
            down = self.pods[q].color_leaves(color)
            for leaf in up:
                for spine in spines:
                    for leaf2 in down:
                        paths.append((src, leaf, spine, leaf2, dst))
        return tuple(sorted(paths))

    # ------------------------------------------------------------------
    # Closed-form Algorithm-1 graph
    # ------------------------------------------------------------------
    def populate_graph(self, graph: TaggedGraph) -> None:
        """Emit the Algorithm-1 node/edge set of the full up-down ELP.

        Equivalent to running :func:`~repro.core.bruteforce.bruteforce_tagging`
        over every pair's paths, without materializing any path: each
        orbit of isomorphic (source, leaf, spine, leaf, dest) hops is
        replicated directly as tagged-graph edges. ``add_edge`` creates
        endpoint nodes, and every up-down ingress hop lies on an edge,
        so edge emission alone reconstructs the exact graph.
        """
        port = self.topo.port_to
        for pod in self.pods:
            for leaf in pod.leaves:
                for src in pod.tors:
                    src_node = ((leaf, port(leaf, src)), 1)
                    for dst in pod.tors:
                        if dst != src:
                            graph.add_edge(
                                src_node, ((dst, port(dst, leaf)), 2)
                            )
        for color, spines in enumerate(self.spine_groups):
            eligible = [
                pod
                for pod in self.pods
                if pod.tors and pod.color_leaves(color)
            ]
            if len(eligible) < 2:
                continue
            for pod in eligible:
                # Up (tag 1 -> 2) and down (tag 3 -> 4) legs depend on
                # one pod only: emit them once per pod, not per pair.
                for leaf in pod.color_leaves(color):
                    for spine in spines:
                        up_node = ((spine, port(spine, leaf)), 2)
                        down_node = ((leaf, port(leaf, spine)), 3)
                        for tor in pod.tors:
                            graph.add_edge(
                                ((leaf, port(leaf, tor)), 1), up_node
                            )
                            graph.add_edge(
                                down_node, ((tor, port(tor, leaf)), 4)
                            )
            for src_pod in eligible:
                for dst_pod in eligible:
                    if src_pod is dst_pod:
                        continue
                    for leaf in src_pod.color_leaves(color):
                        for spine in spines:
                            mid_node = ((spine, port(spine, leaf)), 2)
                            for leaf2 in dst_pod.color_leaves(color):
                                graph.add_edge(
                                    mid_node,
                                    ((leaf2, port(leaf2, spine)), 3),
                                )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def path_count(self) -> int:
        """Exact ELP path count, in O(pods * colors) — no enumeration."""
        total = 0
        for pod in self.pods:
            tors = len(pod.tors)
            total += len(pod.leaves) * tors * (tors - 1)
        for color, spines in enumerate(self.spine_groups):
            fanouts = [
                len(pod.tors) * len(pod.color_leaves(color))
                for pod in self.pods
            ]
            linear = sum(fanouts)
            square = sum(f * f for f in fanouts)
            total += len(spines) * (linear * linear - square)
        return total

    def orbit_decomposition(self) -> Dict[str, Any]:
        """JSON-able summary of the pod equivalence classes.

        Two pods are in the same orbit when they have the same ToR
        count and the same per-color leaf counts — plans are invariant
        under swapping such pods, which is exactly the symmetry the
        closed forms exploit.
        """
        classes: Dict[
            Tuple[int, int, Tuple[Tuple[int, int], ...]], List[int]
        ] = {}
        for idx, pod in enumerate(self.pods):
            signature = (
                len(pod.tors),
                len(pod.leaves),
                tuple(
                    (color, len(leaves))
                    for color, leaves in pod.leaves_by_color
                ),
            )
            classes.setdefault(signature, []).append(idx)
        intra = sum(
            len(pod.leaves) * len(pod.tors) * (len(pod.tors) - 1)
            for pod in self.pods
        )
        return {
            "pod_count": len(self.pods),
            "pod_classes": [
                {
                    "pods": members,
                    "tors_per_pod": signature[0],
                    "leaves_per_pod": signature[1],
                    "leaves_by_color": {
                        str(color): count for color, count in signature[2]
                    },
                }
                for signature, members in sorted(classes.items())
            ],
            "spine_groups": [len(group) for group in self.spine_groups],
            "intra_pod_paths": intra,
            "cross_pod_paths": self.path_count() - intra,
            "total_paths": self.path_count(),
        }


def certify(topo: Topology, provider: Any) -> Optional[SymmetryCertificate]:
    """Certify that closed-form up-down enumeration is exact, or refuse.

    Returns ``None`` (degrade to exhaustive) unless *all* of the
    following hold:

    - ``provider`` is exactly :class:`~repro.core.elp.UpDownElpProvider`
      (a subclass may override ``pair_paths``), with ``shortest_only``
      and endpoints equal to the sorted layer-0 switch set;
    - no link is failed or drained;
    - every switch carries a layer in {0, 1, 2};
    - the ToR/leaf adjacency partitions into disjoint complete-bipartite
      pods (every ToR of a pod links to every leaf of that pod);
    - distinct leaf spine-neighborhoods are pairwise disjoint (a spine
      shared between two colors would admit cross-color paths the
      closed form does not enumerate).
    """
    from repro.core.elp import UpDownElpProvider

    if type(provider) is not UpDownElpProvider:
        return None
    if not provider.shortest_only:
        return None
    if topo.failed_links:
        return None
    tors = sorted(topo.switches_at_layer(TOR_LAYER))
    if provider.explicit_endpoints is not None:
        if sorted(set(provider.explicit_endpoints)) != tors:
            return None

    for name in topo.switches:
        if topo.layer_of(name) not in (TOR_LAYER, LEAF_LAYER, SPINE_LAYER):
            return None

    def _layer_neighbors(name: str, layer: int) -> List[str]:
        return [
            peer
            for peer in topo.neighbors(name)
            if topo.node(peer).is_switch and topo.node(peer).layer == layer
        ]

    tor_leaves: Dict[str, FrozenSet[str]] = {
        tor: frozenset(_layer_neighbors(tor, LEAF_LAYER)) for tor in tors
    }
    leaf_tors: Dict[str, List[str]] = {}
    for tor, leaves in tor_leaves.items():
        for leaf in leaves:
            leaf_tors.setdefault(leaf, []).append(tor)
    all_leaves = sorted(
        set(topo.switches_at_layer(LEAF_LAYER)) | set(leaf_tors)
    )

    # Connected components of the ToR<->leaf bipartite graph = pods.
    visited: Dict[str, int] = {}
    components: List[Tuple[List[str], List[str]]] = []
    for seed in tors + all_leaves:
        if seed in visited:
            continue
        comp_id = len(components)
        comp_tors: List[str] = []
        comp_leaves: List[str] = []
        stack = [seed]
        visited[seed] = comp_id
        while stack:
            name = stack.pop()
            is_tor = topo.layer_of(name) == TOR_LAYER
            (comp_tors if is_tor else comp_leaves).append(name)
            neighbors = (
                tor_leaves[name] if is_tor else leaf_tors.get(name, ())
            )
            for peer in neighbors:
                if peer not in visited:
                    visited[peer] = comp_id
                    stack.append(peer)
        components.append((sorted(comp_tors), sorted(comp_leaves)))

    for comp_tors, comp_leaves in components:
        leaf_set = frozenset(comp_leaves)
        for tor in comp_tors:
            if tor_leaves[tor] != leaf_set:
                return None  # pod is not complete bipartite

    # Color leaves by spine neighborhood; distinct colors must not
    # share a spine, or per-color enumeration would miss paths.
    leaf_color: Dict[str, FrozenSet[str]] = {
        leaf: frozenset(_layer_neighbors(leaf, SPINE_LAYER))
        for leaf in all_leaves
    }
    distinct = {color for color in leaf_color.values() if color}
    spine_owner: Dict[str, FrozenSet[str]] = {}
    for color in distinct:
        for spine in color:
            if spine_owner.setdefault(spine, color) != color:
                return None
    spine_groups = tuple(
        tuple(sorted(color))
        for color in sorted(distinct, key=lambda c: sorted(c))
    )
    color_index = {group: idx for idx, group in enumerate(spine_groups)}

    pods: List[Pod] = []
    for comp_tors, comp_leaves in sorted(components):
        by_color: Dict[int, List[str]] = {}
        for leaf in comp_leaves:
            color = leaf_color[leaf]
            if color:
                by_color.setdefault(
                    color_index[tuple(sorted(color))], []
                ).append(leaf)
        pods.append(
            Pod(
                tors=tuple(comp_tors),
                leaves=tuple(comp_leaves),
                leaves_by_color=tuple(
                    (color, tuple(leaves))
                    for color, leaves in sorted(by_color.items())
                ),
            )
        )
    return SymmetryCertificate(
        topo=topo, pods=tuple(pods), spine_groups=spine_groups
    )
