"""TCAM rule compression via port-bitmap masking (paper §7, Fig. 9).

Commodity ASICs represent ingress/egress ports in TCAM as *bitmaps*, so a
single entry can match an arbitrary **set** of ports. Rules that share a
tag and rewrite action therefore compress:

1. *In-port aggregation*: rules identical except for InPort merge into one
   entry whose in-port bitmap is the union — per-switch rule count drops
   from ``O(n^2 m^2)`` to ``O(n m^2)`` (n ports, m tags).
2. *Joint aggregation*: entries that then share the same in-port set merge
   their out-ports too. Both steps preserve semantics exactly, because
   each compressed entry covers a full cartesian product
   ``in_ports x out_ports`` of original rules.

:func:`expand` inverts the compression (used by the round-trip property
tests).

An installed switch program is an *ordered* entry list with first-match
semantics and a trailing wildcard safeguard that demotes everything the
explicit entries miss (paper footnote 3). :func:`tcam_program` builds
one from a rule table, :func:`first_match` evaluates it exactly the way
the hardware would, and the deployment linter (:mod:`repro.lint`)
certifies arbitrary programs against their exact-rule reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.rules import MatchActionRule, RuleTable
from repro.core.tags import LOSSY_TAG
from repro.exceptions import RuleError


@dataclass(frozen=True)
class TcamEntry:
    """One TCAM entry: bitmap match on ports, exact match on tag.

    ``in_ports`` / ``out_ports`` are frozen sets of port numbers (the
    bitmap abstraction); ``new_tag`` is the rewrite result. ``tag`` may
    be ``None``, the wildcard: the entry then matches *any* tag — that is
    how the trailing safeguard default is expressed in hardware.
    """

    tag: Optional[int]
    in_ports: FrozenSet[int]
    out_ports: FrozenSet[int]
    new_tag: int

    @property
    def is_wildcard(self) -> bool:
        return self.tag is None

    def matches(self, tag: int, in_port: int, out_port: int) -> bool:
        return (
            (self.tag is None or tag == self.tag)
            and in_port in self.in_ports
            and out_port in self.out_ports
        )

    @property
    def covered_rules(self) -> int:
        return len(self.in_ports) * len(self.out_ports)

    def in_port_bitmap(self, width: int) -> int:
        """The entry's in-port bitmap as an integer (bit i = port i)."""
        return _bitmap(self.in_ports, width)

    def out_port_bitmap(self, width: int) -> int:
        return _bitmap(self.out_ports, width)


def _bitmap(ports: Iterable[int], width: int) -> int:
    value = 0
    for port in ports:
        if port >= width:
            raise RuleError(f"port {port} exceeds bitmap width {width}")
        value |= 1 << port
    return value


def compress_in_ports(rules: Sequence[MatchActionRule]) -> List[TcamEntry]:
    """Stage-1 compression: aggregate InPorts per (tag, out_port, new_tag)."""
    grouped: Dict[Tuple[int, int, int], set] = {}
    for rule in rules:
        grouped.setdefault((rule.tag, rule.out_port, rule.new_tag), set()).add(
            rule.in_port
        )
    entries = [
        TcamEntry(
            tag=tag,
            in_ports=frozenset(in_ports),
            out_ports=frozenset({out_port}),
            new_tag=new_tag,
        )
        for (tag, out_port, new_tag), in_ports in grouped.items()
    ]
    return sorted(entries, key=_entry_key)


def compress_joint(rules: Sequence[MatchActionRule]) -> List[TcamEntry]:
    """Stage-2 compression: in-port aggregation, then merge equal in-sets.

    Entries from :func:`compress_in_ports` sharing ``(tag, new_tag,
    in_ports)`` merge their out-ports; the result still covers an exact
    cartesian product, so semantics are unchanged.
    """
    stage1 = compress_in_ports(rules)
    grouped: Dict[Tuple[int, int, FrozenSet[int]], set] = {}
    for entry in stage1:
        key = (entry.tag, entry.new_tag, entry.in_ports)
        grouped.setdefault(key, set()).update(entry.out_ports)
    entries = [
        TcamEntry(
            tag=tag,
            in_ports=in_ports,
            out_ports=frozenset(out_ports),
            new_tag=new_tag,
        )
        for (tag, new_tag, in_ports), out_ports in grouped.items()
    ]
    return sorted(entries, key=_entry_key)


def _entry_key(entry: TcamEntry) -> Tuple[int, int, int, List[int], List[int]]:
    # Wildcard (safeguard) entries sort last: in an ordered program they
    # must sit behind every explicit entry.
    return (
        1 if entry.tag is None else 0,
        entry.tag if entry.tag is not None else 0,
        entry.new_tag,
        sorted(entry.in_ports),
        sorted(entry.out_ports),
    )


def expand(entries: Sequence[TcamEntry]) -> List[MatchActionRule]:
    """Invert compression back to exact-match rules (sorted, deduplicated).

    Wildcard-tag entries that demote (safeguard defaults) are skipped —
    they carry no lossless rule; any other wildcard entry is rejected, as
    it has no finite exact-rule expansion. Raises :class:`RuleError` if
    two entries overlap with different actions — compressed tables
    produced by this module never do.
    """
    seen: Dict[Tuple[int, int, int], int] = {}
    for entry in entries:
        if entry.tag is None:
            if entry.new_tag == LOSSY_TAG:
                continue  # safeguard default: implicit in RuleTable.lookup
            raise RuleError(
                "cannot expand a wildcard-tag entry with a lossless rewrite"
            )
        for in_port in entry.in_ports:
            for out_port in entry.out_ports:
                key = (entry.tag, in_port, out_port)
                previous = seen.get(key)
                if previous is not None and previous != entry.new_tag:
                    raise RuleError(
                        f"ambiguous TCAM entries for match {key}: "
                        f"{previous} vs {entry.new_tag}"
                    )
                seen[key] = entry.new_tag
    return sorted(
        (
            MatchActionRule(tag, in_port, out_port, new_tag)
            for (tag, in_port, out_port), new_tag in seen.items()
        ),
        key=lambda r: r.key,
    )


@dataclass(frozen=True)
class CompressionStats:
    """Rule counts at each compression stage for one switch."""

    switch: str
    uncompressed: int
    in_port_aggregated: int
    joint_aggregated: int

    @property
    def ratio(self) -> float:
        if self.uncompressed == 0:
            return 1.0
        return self.joint_aggregated / self.uncompressed


def compression_stats(table: RuleTable) -> CompressionStats:
    """Measure all compression stages on one switch's rule table."""
    rules = table.as_rules()
    return CompressionStats(
        switch=table.switch,
        uncompressed=len(rules),
        in_port_aggregated=len(compress_in_ports(rules)),
        joint_aggregated=len(compress_joint(rules)),
    )


# ----------------------------------------------------------------------
# Ordered programs (what actually ships to a switch)
# ----------------------------------------------------------------------
def safeguard_entry(ports: Iterable[int]) -> TcamEntry:
    """The catch-all final entry: any tag, any port pair, demote to lossy."""
    port_set = frozenset(ports)
    return TcamEntry(
        tag=None, in_ports=port_set, out_ports=port_set, new_tag=LOSSY_TAG
    )


def tcam_program(table: RuleTable, ports: Iterable[int]) -> List[TcamEntry]:
    """Ordered first-match TCAM program for one switch.

    Joint-compressed entries (mutually non-overlapping, so their relative
    order is free) followed by the wildcard safeguard over ``ports`` —
    "this rule is always the last one in the TCAM rule list" (paper
    footnote 3).
    """
    return compress_joint(table.as_rules()) + [safeguard_entry(ports)]


def first_match(
    entries: Sequence[TcamEntry], tag: int, in_port: int, out_port: int
) -> Optional[int]:
    """Evaluate an ordered program the way hardware does.

    Returns the rewrite of the first matching entry, or ``None`` when no
    entry matches at all (a program missing its safeguard default).
    """
    for entry in entries:
        if entry.matches(tag, in_port, out_port):
            return entry.new_tag
    return None
