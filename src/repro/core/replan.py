"""Incremental re-planning engine (paper §6, "Topology changes").

A Tagger deployment must track topology churn: the paper measures
hundreds of reroute events per day (§3.2), and recomputing the full
pipeline — ELP enumeration, Algorithm 1, deterministic minimization,
rule compilation — from scratch on every link flap is wasteful when a
single link touches a tiny fraction of the ELP.

:class:`IncrementalPlanner` keeps the whole pipeline state warm and
recomputes only what a :class:`~repro.topology.failures.TopologyDelta`
actually invalidates:

1. **Pair-path cache.** The ELP is expressed through a
   :class:`~repro.core.elp.PairwiseElpProvider`, whose contract makes
   each endpoint pair's path set an independent function of the
   topology. A link→pairs index identifies the pairs whose current
   paths traverse a failed link; a *damaged* set (pairs whose current
   paths differ from the no-failure baseline) bounds which pairs a
   restore can affect. Only those pairs are re-enumerated.
2. **Refcounted brute-force graph.** Every ELP path contributes
   reference counts to the Algorithm-1 nodes/edges it induces; the
   tagged graph is exactly the entries with a positive count, so path
   adds/removes update it in O(hops) and the result is bit-identical
   to re-running Algorithm 1 (the graph is a set, order-free).
3. **Scoped re-merge.** Brute-force levels below the lowest changed
   node/edge are untouched, so the resumable
   :class:`~repro.core.determinize.DeterministicMinimizer` restores its
   per-level checkpoint and reprocesses only the dirty suffix.
4. **Plan memo.** Full resulting states are memoized per topology
   fingerprint (qualified by the enumeration strategy, plus the pinned
   extra-path signature), so fail→restore flaps replay from cache —
   and a plan enumerated exhaustively is never served to a
   symmetry-mode request, or vice versa.
5. **Symmetry certificate.** Under the default ``"symmetry"`` strategy
   the planner keeps a :mod:`repro.core.symmetry` certificate of the
   current topology; while it holds (healthy symmetric Clos), per-pair
   enumeration uses the certificate's closed form instead of the
   provider's graph search. Any asymmetry — a failed link, a drain —
   invalidates the certificate and pair recomputation degrades to the
   exhaustive provider, byte-identically.

Whenever a prerequisite fails — the provider contract cannot localize a
restore because the planner never saw the no-failure baseline, or the
minimizer state is cold after a memo hit — the engine falls back to a
full recompute of the affected stage rather than guessing. In **every**
mode the resulting plan is certifiably equivalent to
:meth:`TaggerPlan.from_elp` on the same topology and path set: identical
rule tables, tagged graph, and queue map (property-tested in
``tests/properties/test_incremental.py`` and fuzz-checked as the
``incremental-divergence`` invariant).
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.determinize import DeterministicMinimizer
from repro.core.elp import PairwiseElpProvider
from repro.core.greedy import greedy_minimize
from repro.core.pipeline import QueueMap
from repro.core.planner import TaggerPlan
from repro.core.rules import (
    RuleDiff,
    RuleGenerationReport,
    RuleTable,
    diff_tables,
    rules_from_tagged_graph,
    rules_to_tagged_graph,
)
from repro.core.symmetry import (
    STRATEGY_SYMMETRY,
    SymmetryCertificate,
    certify,
    check_strategy,
)
from repro.core.tags import INITIAL_TAG, TaggedGraph, TEdge, TNode, ingress_hops
from repro.core.verification import assert_deadlock_free
from repro.exceptions import TaggingError
from repro.obs.events import EV_REPLAN_APPLY
from repro.obs.instrument import observe_plan, observe_timings
from repro.obs.telemetry import Telemetry
from repro.perf.timing import StageTimer
from repro.routing.base import Path, is_loop_free, validate_path
from repro.topology.base import Topology
from repro.topology.failures import (
    ADD_PATHS,
    DRAIN,
    LINK_DOWN,
    LinkKey,
    REMOVE_PATHS,
    TopologyDelta,
    apply_delta,
)

Pair = Tuple[str, str]
_MemoKey = Tuple[str, Tuple[Path, ...]]

#: Replan modes, most to least incremental.
MODE_NOOP = "noop"
MODE_MEMO = "memo"
MODE_INCREMENTAL = "incremental"
MODE_FULL = "full"


class _RefcountedGraph:
    """Algorithm-1 tagged graph maintained as per-path reference counts.

    ``add_path``/``remove_path`` mirror one loop iteration of
    :func:`repro.core.bruteforce.bruteforce_tagging` and return the
    nodes/edges whose count crossed zero — the *structural* changes that
    feed dirty-level computation. :meth:`graph` materializes the
    positive-count entries; because :class:`TaggedGraph` is
    set-structured, the result is identical to running Algorithm 1 from
    scratch on the current path multiset, in any insertion order.
    """

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        self._nodes: Dict[TNode, int] = {}
        self._edges: Dict[TEdge, int] = {}

    @property
    def is_empty(self) -> bool:
        return not self._nodes

    def add_path(self, path: Path) -> Tuple[List[TNode], List[TEdge]]:
        created_nodes: List[TNode] = []
        created_edges: List[TEdge] = []
        tag = INITIAL_TAG
        last: Optional[TNode] = None
        for port in ingress_hops(self.topo, path):
            node = (port, tag)
            count = self._nodes.get(node, 0)
            if count == 0:
                created_nodes.append(node)
            self._nodes[node] = count + 1
            if last is not None:
                edge = (last, node)
                ecount = self._edges.get(edge, 0)
                if ecount == 0:
                    created_edges.append(edge)
                self._edges[edge] = ecount + 1
            last = node
            tag += 1
        return created_nodes, created_edges

    def remove_path(self, path: Path) -> Tuple[List[TNode], List[TEdge]]:
        removed_nodes: List[TNode] = []
        removed_edges: List[TEdge] = []
        tag = INITIAL_TAG
        last: Optional[TNode] = None
        for port in ingress_hops(self.topo, path):
            node = (port, tag)
            count = self._nodes.get(node, 0)
            if count <= 0:
                raise TaggingError(
                    f"refcount underflow at {node}; path was never added"
                )
            if count == 1:
                del self._nodes[node]
                removed_nodes.append(node)
            else:
                self._nodes[node] = count - 1
            if last is not None:
                edge = (last, node)
                ecount = self._edges.get(edge, 0)
                if ecount <= 0:
                    raise TaggingError(f"refcount underflow at edge {edge}")
                if ecount == 1:
                    del self._edges[edge]
                    removed_edges.append(edge)
                else:
                    self._edges[edge] = ecount - 1
            last = node
            tag += 1
        return removed_nodes, removed_edges

    def graph(self) -> TaggedGraph:
        graph = TaggedGraph()
        for node in self._nodes:
            graph.add_node(node)
        for src, dst in self._edges:
            graph.add_edge(src, dst)
        return graph

    def counts_snapshot(self) -> Tuple[Dict[TNode, int], Dict[TEdge, int]]:
        return dict(self._nodes), dict(self._edges)

    def restore_counts(
        self, nodes: Dict[TNode, int], edges: Dict[TEdge, int]
    ) -> None:
        self._nodes = dict(nodes)
        self._edges = dict(edges)


@dataclass
class _MemoEntry:
    """Full post-plan state for one (fingerprint, extras) key."""

    pairs: Dict[Pair, Tuple[Path, ...]]
    pair_links: Dict[Pair, FrozenSet[LinkKey]]
    link_index: Dict[LinkKey, Set[Pair]]
    damaged: Set[Pair]
    node_counts: Dict[TNode, int]
    edge_counts: Dict[TEdge, int]
    extras: List[Path]
    plan: TaggerPlan


@dataclass
class ReplanResult:
    """Outcome of one :meth:`IncrementalPlanner.apply` call."""

    delta: TopologyDelta
    mode: str
    plan: TaggerPlan
    diffs: Dict[str, RuleDiff]
    timings: Dict[str, float]
    dirty_pairs: int
    changed_paths: int
    resume_level: Optional[int]
    fingerprint: str

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())

    @property
    def total_rule_touches(self) -> int:
        return sum(diff.touch_count for diff in self.diffs.values())

    def summary(self) -> str:
        return (
            f"{self.delta.describe()}: {self.mode}, "
            f"{self.dirty_pairs} dirty pair(s), "
            f"{self.changed_paths} path change(s), "
            f"{len(self.diffs)} switch(es) touched "
            f"({self.total_rule_touches} rule ops) "
            f"in {self.total_seconds * 1000.0:.1f}ms"
        )


def _path_links(path: Path) -> FrozenSet[LinkKey]:
    """Canonical link keys a path traverses (host hops included)."""
    keys = []
    for i in range(len(path) - 1):
        a, b = path[i], path[i + 1]
        keys.append((a, b) if a <= b else (b, a))
    return frozenset(keys)


class IncrementalPlanner:
    """Warm-state Tagger planner that absorbs topology deltas.

    The planner takes ownership of ``topo``: deltas passed to
    :meth:`apply` mutate it in place (via
    :func:`~repro.topology.failures.apply_delta`) and the current
    :attr:`plan` always refers to it. All three ``minimize`` modes of
    :meth:`TaggerPlan.from_elp` are supported; only ``"deterministic"``
    benefits from the scoped re-merge (the paper's greedy pass is not
    checkpointable), but the ELP cache and refcounted brute-force graph
    accelerate every mode.
    """

    def __init__(
        self,
        topo: Topology,
        provider: PairwiseElpProvider,
        minimize: str = "deterministic",
        max_lossless_queues: int = 8,
        on_conflict: str = "max",
        memo_capacity: int = 8,
        extra_paths: Tuple[Path, ...] = (),
        telemetry: Optional[Telemetry] = None,
        strategy: str = STRATEGY_SYMMETRY,
        workers: int = 1,
        seed: int = 0,
    ) -> None:
        if minimize not in ("deterministic", "paper", "off"):
            raise TaggingError(f"unknown minimize mode {minimize!r}")
        check_strategy(strategy)
        self.topo = topo
        self.provider = provider
        self.minimize = minimize
        self.max_lossless_queues = max_lossless_queues
        self.on_conflict = on_conflict
        self.memo_capacity = memo_capacity
        #: Enumeration strategy; part of the memo key, so memoized plans
        #: are never served across strategies.
        self.strategy = strategy
        #: Verify-stage fan-out + dispatch seed (result-neutral; see
        #: :mod:`repro.core.parallel`).
        self.workers = workers
        self.seed = seed
        #: Closed-form pair enumeration certificate; non-None only under
        #: the symmetry strategy while the topology stays a healthy
        #: symmetric Clos.
        self._cert: Optional[SymmetryCertificate] = None
        #: Optional observability hookup; a pure observer (never consulted
        #: by the planning pipeline itself).
        self.telemetry = telemetry

        self._pairs: Dict[Pair, Tuple[Path, ...]] = {}
        self._pair_links: Dict[Pair, FrozenSet[LinkKey]] = {}
        self._link_index: Dict[LinkKey, Set[Pair]] = {}
        #: Pairs whose current path set differs from the no-failure
        #: baseline; only meaningful while ``_base`` is known.
        self._damaged: Set[Pair] = set()
        #: Pair paths of the pristine (no failed links) topology. None
        #: until the planner has observed that state.
        self._base: Optional[Dict[Pair, Tuple[Path, ...]]] = None

        self._extras: List[Path] = []
        self._brute = _RefcountedGraph(topo)
        self._minimizer = DeterministicMinimizer(topo)
        self._minimizer_valid = False
        self._plan: Optional[TaggerPlan] = None
        #: True when the deployed tables no longer match the brute-force
        #: state (a previous apply raised mid-pipeline).
        self._plan_dirty = True
        self._memo: "OrderedDict[_MemoKey, _MemoEntry]" = OrderedDict()
        #: Structural refcount changes accumulated by _recompute_pair,
        #: drained by the caller into dirty-level computation.
        self._pending_nodes: List[TNode] = []
        self._pending_edges: List[TEdge] = []
        self._last_resume_level: Optional[int] = None

        timer = StageTimer()
        for raw in extra_paths:
            self._extras.append(self._validate_extra(raw))
        self._full_build(timer)
        #: Stage timings of the initial from-scratch build.
        self.initial_timings: Dict[str, float] = timer.timings()
        if self.telemetry is not None:
            observe_timings(
                self.telemetry.registry, "planner-init", self.initial_timings
            )
            observe_plan(self.telemetry.registry, self.plan)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def plan(self) -> TaggerPlan:
        """The current (last successfully compiled) plan."""
        if self._plan is None:
            raise TaggingError("planner holds no valid plan")
        return self._plan

    def elp_paths(self) -> List[Path]:
        """The full current ELP, in from-scratch provider order."""
        paths: List[Path] = []
        for pair in self.provider.ordered_pairs(self.topo):
            paths.extend(self._pairs.get(pair, ()))
        paths.extend(self._extras)
        return paths

    def scratch_plan(self) -> TaggerPlan:
        """From-scratch plan for the current state (differential oracle)."""
        return TaggerPlan.from_elp(
            self.topo,
            self.elp_paths(),
            minimize=self.minimize,
            max_lossless_queues=self.max_lossless_queues,
            on_conflict=self.on_conflict,
        )

    def apply(
        self, delta: TopologyDelta, force_full: bool = False
    ) -> ReplanResult:
        """Absorb one delta and return the re-planned state + rule diff.

        Raises :class:`~repro.exceptions.TaggingError` when the delta
        leaves an empty ELP (nothing to keep lossless) — the topology
        change itself stays applied, so a subsequent restoring delta
        recovers — and :class:`~repro.exceptions.CapacityError` when the
        new tag count exceeds the queue budget.
        """
        result = self._apply(delta, force_full)
        self._publish_result(result)
        return result

    def _publish_result(self, result: ReplanResult) -> None:
        if self.telemetry is None:
            return
        self.telemetry.emit(
            EV_REPLAN_APPLY,
            delta_kind=result.delta.kind,
            mode=result.mode,
            strategy=self.strategy,
            dirty_pairs=result.dirty_pairs,
            changed_paths=result.changed_paths,
        )
        observe_timings(self.telemetry.registry, "replan", result.timings)
        observe_plan(self.telemetry.registry, result.plan)
        self.telemetry.registry.counter(
            "replan_applies_total",
            "Re-plan operations absorbed, by mode.",
            labelnames=("mode",),
        ).inc(mode=result.mode)
        self.telemetry.registry.counter(
            "replan_rule_touches_total",
            "Rule add/remove operations shipped by re-plans.",
        ).inc(result.total_rule_touches)

    def _apply(
        self, delta: TopologyDelta, force_full: bool = False
    ) -> ReplanResult:
        timer = StageTimer()
        prev_tables = self._plan.tables if self._plan is not None else {}
        self._pending_nodes = []
        self._pending_edges = []

        # Path deltas validate fully before any state is touched, so a
        # rejected delta leaves the planner exactly as it was.
        canonical_paths: List[Path] = []
        if delta.kind == ADD_PATHS:
            canonical_paths = [self._validate_extra(p) for p in delta.paths]
        elif delta.kind == REMOVE_PATHS:
            canonical_paths = [tuple(p) for p in delta.paths]
            missing = Counter(canonical_paths) - Counter(self._extras)
            if missing:
                raise TaggingError(
                    f"cannot remove ELP path(s) never added: "
                    f"{sorted(missing)[0]}"
                )

        with timer.stage("apply-delta"):
            touched = apply_delta(self.topo, delta)

        is_path_delta = delta.kind in (ADD_PATHS, REMOVE_PATHS)
        if not is_path_delta:
            # Topology changed: re-certify (or drop) the closed-form
            # pair enumeration before any pair is recomputed.
            self._refresh_cert(timer)
        memo_key = self._memo_key()
        if not force_full and not is_path_delta:
            entry = self._memo.get(memo_key)
            if entry is not None:
                with timer.stage("restore"):
                    self._restore_memo(entry)
                with timer.stage("diff"):
                    diffs = diff_tables(prev_tables, self.plan.tables)
                self._memo.move_to_end(memo_key)
                return ReplanResult(
                    delta=delta,
                    mode=MODE_MEMO,
                    plan=self.plan,
                    diffs=diffs,
                    timings=timer.timings(),
                    dirty_pairs=0,
                    changed_paths=0,
                    resume_level=None,
                    fingerprint=memo_key[0],
                )

        mode = MODE_INCREMENTAL
        dirty: Set[Pair] = set()
        changed_paths = 0

        with timer.stage("elp"):
            if is_path_delta:
                dirty = set()
            elif force_full:
                mode = MODE_FULL
                dirty = set(self.provider.ordered_pairs(self.topo))
            elif delta.kind in (LINK_DOWN, DRAIN):
                # Locality: a pair's path set can change only if one of
                # its current paths traverses a link that went down.
                for link in touched:
                    dirty |= self._link_index.get(link, set())
            else:  # link-up / undrain
                if self._base is None:
                    # Never saw the pristine baseline: cannot bound the
                    # restore's blast radius. Recompute everything.
                    mode = MODE_FULL
                    dirty = set(self.provider.ordered_pairs(self.topo))
                else:
                    dirty = set(self._damaged)
            for pair in sorted(dirty):
                pair_change = self._recompute_pair(pair)
                if pair_change is not None:
                    changed_paths += len(pair_change[0]) + len(pair_change[1])

        with timer.stage("bruteforce"):
            if delta.kind == ADD_PATHS:
                for path in canonical_paths:
                    self._extras.append(path)
                    nodes, edges = self._brute.add_path(path)
                    self._pending_nodes.extend(nodes)
                    self._pending_edges.extend(edges)
                changed_paths += len(canonical_paths)
            elif delta.kind == REMOVE_PATHS:
                for path in canonical_paths:
                    self._extras.remove(path)
                    nodes, edges = self._brute.remove_path(path)
                    self._pending_nodes.extend(nodes)
                    self._pending_edges.extend(edges)
                changed_paths += len(canonical_paths)
            changed_nodes = self._pending_nodes
            changed_edges = self._pending_edges
            self._pending_nodes = []
            self._pending_edges = []

        if self._base is None and not self.topo.failed_links:
            # First time the planner sees the pristine fabric: snapshot
            # the baseline that bounds future restore blast radii.
            self._base = dict(self._pairs)
            self._damaged = set()

        if (
            not changed_nodes
            and not changed_edges
            and not self._plan_dirty
            and self._plan is not None
        ):
            self._store_memo()
            return ReplanResult(
                delta=delta,
                mode=MODE_NOOP if mode != MODE_FULL else MODE_FULL,
                plan=self.plan,
                diffs={},
                timings=timer.timings(),
                dirty_pairs=len(dirty),
                changed_paths=changed_paths,
                resume_level=None,
                fingerprint=memo_key[0],
            )

        dirty_level = self._dirty_level(changed_nodes, changed_edges)
        plan = self._compile(timer, dirty_level)
        with timer.stage("diff"):
            diffs = diff_tables(prev_tables, plan.tables)
        self._store_memo()
        return ReplanResult(
            delta=delta,
            mode=mode,
            plan=plan,
            diffs=diffs,
            timings=timer.timings(),
            dirty_pairs=len(dirty),
            changed_paths=changed_paths,
            resume_level=self._last_resume_level,
            fingerprint=memo_key[0],
        )

    # ------------------------------------------------------------------
    # ELP cache maintenance
    # ------------------------------------------------------------------
    def _validate_extra(self, path: Tuple[str, ...]) -> Path:
        canonical = validate_path(self.topo, path, allow_failed=True)
        if not is_loop_free(canonical):
            raise TaggingError(f"ELP paths must be loop-free: {canonical}")
        return canonical

    def _refresh_cert(self, timer: StageTimer) -> None:
        """Re-establish (or drop) the symmetry certificate for ``topo``."""
        if self.strategy != STRATEGY_SYMMETRY:
            self._cert = None
            return
        with timer.stage("certify"):
            self._cert = certify(self.topo, self.provider)

    def _provider_pair_paths(self, pair: Pair) -> Tuple[Path, ...]:
        """One pair's ELP — closed form while certified, else provider.

        The certificate's :meth:`~SymmetryCertificate.pair_paths` is
        byte-identical to the provider's on any topology it certifies
        (property-tested), so callers never observe which one ran.
        """
        src, dst = pair
        if self._cert is not None:
            return self._cert.pair_paths(src, dst)
        return self.provider.pair_paths(self.topo, src, dst)

    def _recompute_pair(
        self, pair: Pair
    ) -> Optional[Tuple[Tuple[Path, ...], Tuple[Path, ...]]]:
        """Re-enumerate one pair; returns (removed, added) paths or None.

        ``removed``/``added`` are the multiset difference between the old
        and new path sets — unchanged paths never touch the refcounted
        graph. Structural refcount changes accumulate in
        ``_pending_nodes`` / ``_pending_edges`` so the caller can account
        them to the brute-force stage.
        """
        old = self._pairs.get(pair, ())
        new = self._provider_pair_paths(pair)
        if new == old:
            if self._base is not None:
                # Membership may still flip on a restore that undoes the
                # damage bookkeeping without changing this pair.
                if new != self._base.get(pair, ()):
                    self._damaged.add(pair)
                else:
                    self._damaged.discard(pair)
            return None
        # Refcounts are additive, so only the multiset difference needs
        # to touch the brute-force graph: a link flap typically preserves
        # most of a pair's ECMP fan-out, and churning the survivors would
        # cost far more than the enumeration itself.
        old_counter = Counter(old)
        new_counter = Counter(new)
        removed = tuple((old_counter - new_counter).elements())
        added = tuple((new_counter - old_counter).elements())
        for path in removed:
            nodes, edges = self._brute.remove_path(path)
            self._pending_nodes.extend(nodes)
            self._pending_edges.extend(edges)
        for path in added:
            nodes, edges = self._brute.add_path(path)
            self._pending_nodes.extend(nodes)
            self._pending_edges.extend(edges)
        self._set_pair(pair, new)
        if self._base is not None:
            if new != self._base.get(pair, ()):
                self._damaged.add(pair)
            else:
                self._damaged.discard(pair)
        return removed, added

    def _set_pair(self, pair: Pair, paths: Tuple[Path, ...]) -> None:
        old_links = self._pair_links.get(pair, frozenset())
        new_links: FrozenSet[LinkKey] = frozenset()
        if paths:
            new_links = frozenset().union(*(_path_links(p) for p in paths))
        for link in old_links - new_links:
            bucket = self._link_index.get(link)
            if bucket is not None:
                bucket.discard(pair)
                if not bucket:
                    del self._link_index[link]
        for link in new_links - old_links:
            self._link_index.setdefault(link, set()).add(pair)
        if paths:
            self._pairs[pair] = paths
            self._pair_links[pair] = new_links
        else:
            self._pairs.pop(pair, None)
            self._pair_links.pop(pair, None)

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def _full_build(self, timer: StageTimer) -> None:
        """From-scratch build of every pipeline stage (init path)."""
        self._pending_nodes = []
        self._pending_edges = []
        self._refresh_cert(timer)
        with timer.stage("elp"):
            for pair in self.provider.ordered_pairs(self.topo):
                self._recompute_pair(pair)
        with timer.stage("bruteforce"):
            for path in self._extras:
                self._brute.add_path(path)
            self._pending_nodes = []
            self._pending_edges = []
        if self._base is None and not self.topo.failed_links:
            self._base = dict(self._pairs)
            self._damaged = set()
        self._minimizer_valid = False
        self._compile(timer, dirty_level=None)
        self._store_memo()

    def _compile(
        self, timer: StageTimer, dirty_level: Optional[int]
    ) -> TaggerPlan:
        """Minimize + verify + queue-fit the current brute-force state.

        Any failure leaves ``_plan_dirty`` set so the (still intact)
        previous plan is never mistaken for the current topology's.
        """
        self._last_resume_level = None
        if not self._pairs and not self._extras:
            self._minimizer_valid = False
            self._plan_dirty = True
            raise TaggingError("empty ELP: nothing to tag")
        self._plan_dirty = True
        rule_report: Optional[RuleGenerationReport] = None
        tables: Dict[str, RuleTable]
        with timer.stage("minimize"):
            graph = self._brute.graph()
            if self.minimize == "deterministic":
                from_level: Optional[int] = None
                if (
                    self._minimizer_valid
                    and dirty_level is not None
                    and dirty_level > INITIAL_TAG
                ):
                    from_level = min(
                        dirty_level, self._minimizer.resumable_from
                    )
                    if from_level <= INITIAL_TAG:
                        from_level = None
                try:
                    result = self._minimizer.run(graph, from_level=from_level)
                except TaggingError:
                    self._minimizer_valid = False
                    raise
                self._minimizer_valid = True
                self._last_resume_level = from_level
                tables = result.tables
                final_graph = result.graph
            else:
                final_graph = (
                    greedy_minimize(graph)
                    if self.minimize == "paper"
                    else graph
                )
        with timer.stage("verify"):
            assert_deadlock_free(
                final_graph, workers=self.workers, seed=self.seed
            )
            if self.minimize != "deterministic":
                rule_report = rules_from_tagged_graph(
                    self.topo, final_graph, on_conflict=self.on_conflict
                )
                tables = rule_report.tables
                if rule_report.conflicts:
                    effective = rules_to_tagged_graph(self.topo, tables)
                    assert_deadlock_free(
                        effective, workers=self.workers, seed=self.seed
                    )
                    final_graph = effective
        with timer.stage("queue-map"):
            queue_map = QueueMap.identity(
                final_graph.max_tag, self.max_lossless_queues
            )
        plan = TaggerPlan(
            topo=self.topo,
            graph=final_graph,
            tables=tables,
            queue_map=queue_map,
            description=(
                f"algorithm-1+{self.minimize} ({final_graph.num_tags} tags)"
            ),
            rule_report=rule_report,
            meta={
                "strategy": self.strategy,
                "certified": self._cert is not None,
            },
        )
        self._plan = plan
        self._plan_dirty = False
        return plan

    @staticmethod
    def _dirty_level(
        changed_nodes: List[TNode], changed_edges: List[TEdge]
    ) -> Optional[int]:
        """Lowest brute-force level whose minimization input changed.

        A node created/deleted at level ``t`` alters ``nodes_with_tag(t)``;
        an edge change alters only the predecessor view of its *dst*
        level. Levels strictly below the minimum are processed on
        identical input, which is what makes checkpoint resume sound.
        """
        levels = [node[1] for node in changed_nodes]
        levels.extend(edge[1][1] for edge in changed_edges)
        return min(levels) if levels else None

    # ------------------------------------------------------------------
    # Memoization
    # ------------------------------------------------------------------
    def _memo_key(self) -> _MemoKey:
        # The strategy qualifies the fingerprint: a memoized exhaustive
        # plan must never satisfy a symmetry-mode request (or vice
        # versa) even though both hold identical bytes — their provenance
        # metadata and downstream perf expectations differ.
        return (
            f"{self.topo.fingerprint()}:{self.strategy}",
            tuple(sorted(self._extras)),
        )

    def _store_memo(self) -> None:
        if self._plan is None or self._plan_dirty or self.memo_capacity <= 0:
            return
        nodes, edges = self._brute.counts_snapshot()
        key = self._memo_key()
        self._memo[key] = _MemoEntry(
            pairs=dict(self._pairs),
            pair_links=dict(self._pair_links),
            link_index={k: set(v) for k, v in self._link_index.items()},
            damaged=set(self._damaged),
            node_counts=nodes,
            edge_counts=edges,
            extras=list(self._extras),
            plan=self._plan,
        )
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_capacity:
            self._memo.popitem(last=False)

    def _restore_memo(self, entry: _MemoEntry) -> None:
        self._pairs = dict(entry.pairs)
        self._pair_links = dict(entry.pair_links)
        self._link_index = {k: set(v) for k, v in entry.link_index.items()}
        self._damaged = set(entry.damaged)
        self._extras = list(entry.extras)
        self._brute.restore_counts(entry.node_counts, entry.edge_counts)
        # The minimizer's checkpoints describe a different graph history;
        # the next non-memo delta re-establishes them with a full merge.
        self._minimizer_valid = False
        self._plan = entry.plan
        self._plan_dirty = False
