"""Determinism-aware tag minimization (rule-realizable Algorithm 2).

Algorithm 2 as printed in the paper assigns new tags to tagged-graph
*nodes* independently. Hardware rules, however, match only
``(tag, InPort, OutPort)`` — the rewrite must be a **function** of that
key. When the greedy pass merges two brute-force nodes ``(Ai, t1)`` and
``(Ai, t2)`` into one class but sends their same-port successors
``(Bj, t1+1)`` and ``(Bj, t2+1)`` to *different* classes, no rule table
can realize the result: the switch would need two rewrites for one match
key. (On the paper's testbed Clos with a 1-bounce ELP this actually
happens — see ``tests/core/test_determinize.py``.)

This module re-runs the greedy merge while building the transition
function explicitly:

- processing brute-force tags in ascending order (monotonicity, as in
  Algorithm 2);
- a node whose predecessor transitions are already defined is *forced*
  into the class those transitions dictate (the DFA-congruence closure of
  the merge);
- otherwise the node greedily tries the current class, then a new one,
  under the same per-class acyclicity sandbox as Algorithm 2;
- on contradiction (two predecessors force different classes, or the
  forced class closes a cycle) the node falls back to the lowest feasible
  class and the losing transitions keep their earlier definitions — the
  affected packets simply follow the earlier rules, and end-to-end ELP
  coverage is re-measured afterwards rather than assumed.

The output is directly a set of per-switch rule tables plus the tagged
graph they induce; by construction rule generation can never conflict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.greedy import _Sandbox
from repro.core.rules import RuleTable, rules_to_tagged_graph
from repro.core.tags import INITIAL_TAG, PortKey, TaggedGraph, TNode
from repro.exceptions import TaggingError
from repro.topology.base import Topology

#: A transition key: packet in state (src_port, src_class) forwarded onto
#: the link whose far end is dst_port.
TransKey = Tuple[PortKey, int, PortKey]


@dataclass
class DeterministicTagging:
    """Result of :func:`deterministic_minimize`."""

    tables: Dict[str, RuleTable]
    graph: TaggedGraph
    node_class: Dict[TNode, int]
    num_tags: int
    contradictions: int

    @property
    def total_rules(self) -> int:
        return sum(len(table) for table in self.tables.values())


@dataclass
class _Checkpoint:
    """Minimizer state captured *before* processing one brute-force level."""

    node_class: Dict[TNode, int]
    transitions: Dict[TransKey, int]
    sandboxes: Dict[int, _Sandbox]
    current: int
    contradictions: int

    @staticmethod
    def capture(minimizer: "DeterministicMinimizer") -> "_Checkpoint":
        return _Checkpoint(
            node_class=dict(minimizer._node_class),
            transitions=dict(minimizer._transitions),
            sandboxes={
                cls: sandbox.copy()
                for cls, sandbox in minimizer._sandboxes.items()
            },
            current=minimizer._current,
            contradictions=minimizer._contradictions,
        )

    def restore(self, minimizer: "DeterministicMinimizer") -> None:
        minimizer._node_class = dict(self.node_class)
        minimizer._transitions = dict(self.transitions)
        minimizer._sandboxes = {
            cls: sandbox.copy() for cls, sandbox in self.sandboxes.items()
        }
        minimizer._current = self.current
        minimizer._contradictions = self.contradictions


class DeterministicMinimizer:
    """Resumable deterministic minimization with per-level checkpoints.

    The merge processes brute-force tag levels in ascending order, and a
    level's outcome depends only on levels below it. The minimizer
    therefore snapshots its state before each level; when the caller
    knows the brute-force graph changed only at levels ``>= dirty``
    (see :mod:`repro.core.replan`), :meth:`run` can restore the
    ``dirty`` checkpoint and reprocess just the suffix — the *scoped
    re-merge* — producing output bit-identical to a full run on the new
    graph. ``run(graph)`` with no ``from_level`` is exactly the original
    :func:`deterministic_minimize`.
    """

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        self._node_class: Dict[TNode, int] = {}
        self._transitions: Dict[TransKey, int] = {}
        self._sandboxes: Dict[int, _Sandbox] = {}
        self._current = INITIAL_TAG
        self._contradictions = 0
        #: _checkpoints[i] = state before processing level INITIAL_TAG + i.
        self._checkpoints: List[_Checkpoint] = []

    @property
    def resumable_from(self) -> int:
        """Highest level a subsequent run() may resume from."""
        return INITIAL_TAG + len(self._checkpoints) - 1

    def run(
        self, bruteforce: TaggedGraph, from_level: Optional[int] = None
    ) -> DeterministicTagging:
        """Minimize ``bruteforce``, optionally resuming at ``from_level``.

        A resume is only sound when ``bruteforce`` is identical to the
        previously minimized graph at every level below ``from_level``
        (same nodes, same edges into those levels) — the caller
        guarantees this. ``from_level`` beyond :attr:`resumable_from`
        raises; pass ``None`` (or :data:`INITIAL_TAG`) for a full run.
        """
        if bruteforce.num_nodes == 0:
            raise TaggingError("cannot minimize an empty tagged graph")
        largest = bruteforce.max_tag
        if from_level is None:
            from_level = INITIAL_TAG
        if from_level > INITIAL_TAG:
            if from_level > self.resumable_from:
                raise TaggingError(
                    f"cannot resume at level {from_level}; checkpoints stop "
                    f"at {self.resumable_from}"
                )
            self._checkpoints[from_level - INITIAL_TAG].restore(self)
            del self._checkpoints[from_level - INITIAL_TAG :]
        else:
            from_level = INITIAL_TAG
            self._node_class = {}
            self._transitions = {}
            self._sandboxes = {}
            self._current = INITIAL_TAG
            self._contradictions = 0
            self._checkpoints = []

        for old_tag in range(from_level, largest + 1):
            self._checkpoints.append(_Checkpoint.capture(self))
            self._run_level(bruteforce, old_tag)
        # Terminal checkpoint: lets a later delta that only *adds* a new
        # deeper level resume from the finished state.
        self._checkpoints.append(_Checkpoint.capture(self))
        return self._finalize()

    def _run_level(self, bruteforce: TaggedGraph, old_tag: int) -> None:
        node_class = self._node_class
        transitions = self._transitions
        sandboxes = self._sandboxes
        current = self._current
        bumped = False
        for node in sorted(bruteforce.nodes_with_tag(old_tag)):
            port = node[0]
            preds = sorted(bruteforce.predecessors(node))
            pred_ports = [(pred, pred[0], node_class[pred]) for pred in preds]
            keys = [
                (pred_port, pred_cls, port)
                for _, pred_port, pred_cls in pred_ports
            ]
            defined = {transitions[k] for k in keys if k in transitions}

            if len(defined) == 1:
                candidates: List[int] = [next(iter(defined))]
            elif not defined:
                candidates = [current, current + 1]
            else:
                candidates = []  # predecessors force different classes

            assigned: Optional[int] = None
            for cls in candidates:
                if any(value != cls for value in defined):
                    continue
                if any(pred_cls > cls for _, _, pred_cls in pred_ports):
                    continue  # would need a tag-decreasing edge
                sandbox = sandboxes.setdefault(cls, _Sandbox())
                intra = [
                    pred_port
                    for _, pred_port, pred_cls in pred_ports
                    if pred_cls == cls
                ]
                if sandbox.would_cycle(port, intra):
                    continue
                assigned = cls
                break

            if assigned is None:
                self._contradictions += 1
                assigned = _fallback_class(
                    sandboxes, transitions, pred_ports, port, current
                )

            # Define transitions for predecessors whose key is still free
            # and whose class does not exceed the assignment (others keep
            # their earlier definitions or stay undefined -> lossy).
            sandbox = sandboxes.setdefault(assigned, _Sandbox())
            intra_new: List[PortKey] = []
            for _, pred_port, pred_cls in pred_ports:
                key = (pred_port, pred_cls, port)
                if key not in transitions and pred_cls <= assigned:
                    transitions[key] = assigned
                if transitions.get(key) == assigned and pred_cls == assigned:
                    intra_new.append(pred_port)
            sandbox.add(port, intra_new)
            node_class[node] = assigned
            if assigned > current:
                bumped = True
        if bumped:
            self._current = current + 1

    def _finalize(self) -> DeterministicTagging:
        tables = _tables_from_transitions(self.topo, self._transitions)
        graph = rules_to_tagged_graph(self.topo, tables)
        # Entry nodes (first hops) carry class 1 by construction; make
        # sure they exist in the graph even if they have no outgoing rule
        # (single switch paths).
        for node, cls in self._node_class.items():
            graph.add_node((node[0], cls))
        num_tags = max(self._node_class.values()) if self._node_class else 0
        return DeterministicTagging(
            tables=tables,
            graph=graph,
            node_class=dict(self._node_class),
            num_tags=num_tags,
            contradictions=self._contradictions,
        )


def deterministic_minimize(
    topo: Topology, bruteforce: TaggedGraph
) -> DeterministicTagging:
    """Minimize tags while keeping the rewrite a function of its match key."""
    return DeterministicMinimizer(topo).run(bruteforce)


def _fallback_class(
    sandboxes: Dict[int, _Sandbox],
    transitions: Dict[TransKey, int],
    pred_ports: Sequence[Tuple[TNode, PortKey, int]],
    port: PortKey,
    current: int,
) -> int:
    """Lowest class >= every predecessor's class that stays acyclic.

    Only predecessors whose transition will actually point at this node
    (i.e. their key is undefined so far) constrain the sandbox check.
    """
    floor = max(
        (pred_cls for _, _, pred_cls in pred_ports), default=INITIAL_TAG
    )
    cls = max(floor, INITIAL_TAG)
    while True:
        sandbox = sandboxes.setdefault(cls, _Sandbox())
        intra = [
            pred_port
            for _, pred_port, pred_cls in pred_ports
            if pred_cls == cls
            and (pred_port, pred_cls, port) not in transitions
        ]
        if not sandbox.would_cycle(port, intra):
            return cls
        cls += 1


def _tables_from_transitions(
    topo: Topology, transitions: Dict[TransKey, int]
) -> Dict[str, RuleTable]:
    tables: Dict[str, RuleTable] = {}
    for (src_port, src_cls, dst_port), new_cls in transitions.items():
        switch, in_port = src_port
        dst_switch, _ = dst_port
        out_port = topo.port_to(switch, dst_switch)
        table = tables.setdefault(switch, RuleTable(switch=switch))
        key = (src_cls, in_port, out_port)
        existing = table.rules.get(key)
        if existing is not None and existing != new_cls:
            raise TaggingError(
                f"internal error: deterministic minimize produced a "
                f"conflicting rule at {switch!r} {key}"
            )
        table.rules[key] = new_cls
    return tables
