"""Determinism-aware tag minimization (rule-realizable Algorithm 2).

Algorithm 2 as printed in the paper assigns new tags to tagged-graph
*nodes* independently. Hardware rules, however, match only
``(tag, InPort, OutPort)`` — the rewrite must be a **function** of that
key. When the greedy pass merges two brute-force nodes ``(Ai, t1)`` and
``(Ai, t2)`` into one class but sends their same-port successors
``(Bj, t1+1)`` and ``(Bj, t2+1)`` to *different* classes, no rule table
can realize the result: the switch would need two rewrites for one match
key. (On the paper's testbed Clos with a 1-bounce ELP this actually
happens — see ``tests/core/test_determinize.py``.)

This module re-runs the greedy merge while building the transition
function explicitly:

- processing brute-force tags in ascending order (monotonicity, as in
  Algorithm 2);
- a node whose predecessor transitions are already defined is *forced*
  into the class those transitions dictate (the DFA-congruence closure of
  the merge);
- otherwise the node greedily tries the current class, then a new one,
  under the same per-class acyclicity sandbox as Algorithm 2;
- on contradiction (two predecessors force different classes, or the
  forced class closes a cycle) the node falls back to the lowest feasible
  class and the losing transitions keep their earlier definitions — the
  affected packets simply follow the earlier rules, and end-to-end ELP
  coverage is re-measured afterwards rather than assumed.

The output is directly a set of per-switch rule tables plus the tagged
graph they induce; by construction rule generation can never conflict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.greedy import _Sandbox
from repro.core.rules import RuleTable, rules_to_tagged_graph
from repro.core.tags import INITIAL_TAG, PortKey, TaggedGraph, TNode
from repro.exceptions import TaggingError
from repro.topology.base import Topology

#: A transition key: packet in state (src_port, src_class) forwarded onto
#: the link whose far end is dst_port.
TransKey = Tuple[PortKey, int, PortKey]


@dataclass
class DeterministicTagging:
    """Result of :func:`deterministic_minimize`."""

    tables: Dict[str, RuleTable]
    graph: TaggedGraph
    node_class: Dict[TNode, int]
    num_tags: int
    contradictions: int

    @property
    def total_rules(self) -> int:
        return sum(len(table) for table in self.tables.values())


def deterministic_minimize(
    topo: Topology, bruteforce: TaggedGraph
) -> DeterministicTagging:
    """Minimize tags while keeping the rewrite a function of its match key."""
    if bruteforce.num_nodes == 0:
        raise TaggingError("cannot minimize an empty tagged graph")

    largest = bruteforce.max_tag
    node_class: Dict[TNode, int] = {}
    transitions: Dict[TransKey, int] = {}
    sandboxes: Dict[int, _Sandbox] = {}
    current = INITIAL_TAG
    contradictions = 0

    for old_tag in range(INITIAL_TAG, largest + 1):
        bumped = False
        for node in sorted(bruteforce.nodes_with_tag(old_tag)):
            port = node[0]
            preds = sorted(bruteforce.predecessors(node))
            pred_ports = [(pred, pred[0], node_class[pred]) for pred in preds]
            keys = [
                (pred_port, pred_cls, port)
                for _, pred_port, pred_cls in pred_ports
            ]
            defined = {transitions[k] for k in keys if k in transitions}

            if len(defined) == 1:
                candidates: List[int] = [next(iter(defined))]
            elif not defined:
                candidates = [current, current + 1]
            else:
                candidates = []  # predecessors force different classes

            assigned: Optional[int] = None
            for cls in candidates:
                if any(value != cls for value in defined):
                    continue
                if any(pred_cls > cls for _, _, pred_cls in pred_ports):
                    continue  # would need a tag-decreasing edge
                sandbox = sandboxes.setdefault(cls, _Sandbox())
                intra = [
                    pred_port
                    for _, pred_port, pred_cls in pred_ports
                    if pred_cls == cls
                ]
                if sandbox.would_cycle(port, intra):
                    continue
                assigned = cls
                break

            if assigned is None:
                contradictions += 1
                assigned = _fallback_class(
                    sandboxes, transitions, pred_ports, port, current
                )

            # Define transitions for predecessors whose key is still free
            # and whose class does not exceed the assignment (others keep
            # their earlier definitions or stay undefined -> lossy).
            sandbox = sandboxes.setdefault(assigned, _Sandbox())
            intra: List[PortKey] = []
            for _, pred_port, pred_cls in pred_ports:
                key = (pred_port, pred_cls, port)
                if key not in transitions and pred_cls <= assigned:
                    transitions[key] = assigned
                if transitions.get(key) == assigned and pred_cls == assigned:
                    intra.append(pred_port)
            sandbox.add(port, intra)
            node_class[node] = assigned
            if assigned > current:
                bumped = True
        if bumped:
            current += 1

    tables = _tables_from_transitions(topo, transitions)
    graph = rules_to_tagged_graph(topo, tables)
    # Entry nodes (first hops) carry class 1 by construction; make sure
    # they exist in the graph even if they have no outgoing rule (single
    # switch paths).
    for node, cls in node_class.items():
        graph.add_node((node[0], cls))
    num_tags = max(node_class.values()) if node_class else 0
    return DeterministicTagging(
        tables=tables,
        graph=graph,
        node_class=node_class,
        num_tags=num_tags,
        contradictions=contradictions,
    )


def _fallback_class(
    sandboxes: Dict[int, _Sandbox],
    transitions: Dict[TransKey, int],
    pred_ports: Sequence[Tuple[TNode, PortKey, int]],
    port: PortKey,
    current: int,
) -> int:
    """Lowest class >= every predecessor's class that stays acyclic.

    Only predecessors whose transition will actually point at this node
    (i.e. their key is undefined so far) constrain the sandbox check.
    """
    floor = max(
        (pred_cls for _, _, pred_cls in pred_ports), default=INITIAL_TAG
    )
    cls = max(floor, INITIAL_TAG)
    while True:
        sandbox = sandboxes.setdefault(cls, _Sandbox())
        intra = [
            pred_port
            for _, pred_port, pred_cls in pred_ports
            if pred_cls == cls
            and (pred_port, pred_cls, port) not in transitions
        ]
        if not sandbox.would_cycle(port, intra):
            return cls
        cls += 1


def _tables_from_transitions(
    topo: Topology, transitions: Dict[TransKey, int]
) -> Dict[str, RuleTable]:
    tables: Dict[str, RuleTable] = {}
    for (src_port, src_cls, dst_port), new_cls in transitions.items():
        switch, in_port = src_port
        dst_switch, _ = dst_port
        out_port = topo.port_to(switch, dst_switch)
        table = tables.setdefault(switch, RuleTable(switch=switch))
        key = (src_cls, in_port, out_port)
        existing = table.rules.get(key)
        if existing is not None and existing != new_cls:
            raise TaggingError(
                f"internal error: deterministic minimize produced a "
                f"conflicting rule at {switch!r} {key}"
            )
        table.rules[key] = new_cls
    return tables
