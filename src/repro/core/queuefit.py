"""Fitting a tagging scheme into a hardware queue budget.

Commodity switches support only 2-3 lossless queues (paper §3.3). When a
generic tagging run needs more tags than the hardware has, the operator's
options per the paper are: shrink the ELP, or use a topology-specific
scheme. This module adds a third: *post-hoc tag merging*. Two tag classes
``t`` and ``t+1`` can be fused into one whenever the union of their
subgraphs (including the cross edges between them, which become
intra-class) stays acyclic; the result still satisfies both Theorem 5.1
requirements, so deadlock freedom is preserved, and rules are renumbered
consistently so determinism is untouched.

Notably, on the paper's Fig. 6 example (Clos, 1-bounce ELP) this recovers
the *optimal* two-priority scheme from Algorithm 2's three-tag output —
the generic pipeline plus merging matches the hand-crafted Clos tagger.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.rules import RuleTable
from repro.core.tags import INITIAL_TAG, PortKey, TaggedGraph
from repro.core.verification import verify_tagged_graph
from repro.exceptions import CapacityError, TaggingError


def merge_is_safe(graph: TaggedGraph, low: int, high: int) -> bool:
    """Would fusing tag classes ``low`` and ``high`` stay acyclic?

    The fused class contains both tags' nodes (same-port nodes merge) and
    every edge whose endpoints both land in it — including former
    cross-tag edges between the two classes.
    """
    if high <= low:
        raise TaggingError("merge targets must satisfy low < high")
    member_tags = {low, high}
    ports: Set[PortKey] = set()
    edges: List[Tuple[PortKey, PortKey]] = []
    for tag in member_tags:
        for node in graph.nodes_with_tag(tag):
            ports.add(node[0])
            for succ in graph.successors(node):
                if succ[1] in member_tags:
                    edges.append((node[0], succ[0]))
    # Cycle check over the port-level fused graph.
    out: Dict[PortKey, Set[PortKey]] = {}
    for src, dst in edges:
        if src == dst:
            return False
        out.setdefault(src, set()).add(dst)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {port: WHITE for port in ports}
    for root in ports:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(sorted(out.get(root, ()))))]
        color[root] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in color:
                    continue
                if color[succ] == GRAY:
                    return False
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    stack.append((succ, iter(sorted(out.get(succ, ())))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return True


def apply_tag_mapping(graph: TaggedGraph, mapping: Dict[int, int]) -> TaggedGraph:
    """Renumber tags through a monotone mapping; validates monotonicity."""
    tags = sorted(mapping)
    for a, b in zip(tags, tags[1:]):
        if mapping[a] > mapping[b]:
            raise TaggingError("tag mapping must be monotone non-decreasing")
    result = TaggedGraph()
    for node in graph.nodes:
        result.add_node((node[0], mapping[node[1]]))
    for src, dst in graph.edges():
        result.add_edge(
            (src[0], mapping[src[1]]), (dst[0], mapping[dst[1]])
        )
    return result


def remap_tables(
    tables: Dict[str, RuleTable], mapping: Dict[int, int]
) -> Dict[str, RuleTable]:
    """Renumber rule tables through a tag mapping.

    Merged rules that become identical collapse; a contradiction (same
    key, different actions after mapping) is impossible when the mapping
    is a function of the tag, but is checked anyway.
    """
    remapped: Dict[str, RuleTable] = {}
    for switch, table in tables.items():
        new_table = RuleTable(switch=switch, policy=table.policy)
        for (tag, in_port, out_port), new_tag in table.rules.items():
            key = (mapping.get(tag, tag), in_port, out_port)
            value = mapping.get(new_tag, new_tag)
            existing = new_table.rules.get(key)
            if existing is not None and existing != value:
                raise TaggingError(
                    f"tag mapping created conflicting rules at {switch!r}"
                )
            new_table.rules[key] = value
        remapped[switch] = new_table
    return remapped


def fit_to_queues(
    graph: TaggedGraph, max_tags: int
) -> Tuple[TaggedGraph, Dict[int, int]]:
    """Greedily fuse adjacent tag classes until ``max_tags`` fit.

    Scans adjacent pairs lowest-first each round and fuses the first safe
    pair. Returns the fused graph plus the total old-tag -> new-tag
    mapping (identity if the graph already fits).

    Raises :class:`CapacityError` when no sequence of safe adjacent
    merges reaches the budget — the honest "this ELP does not fit this
    hardware" signal.
    """
    if max_tags < 1:
        raise TaggingError("max_tags must be >= 1")
    current = graph
    total: Dict[int, int] = {tag: tag for tag in graph.tags()}
    while current.num_tags > max_tags:
        tags = current.tags()
        fused = False
        for low, high in zip(tags, tags[1:]):
            if merge_is_safe(current, low, high):
                step: Dict[int, int] = {}
                next_tag = INITIAL_TAG
                for tag in tags:
                    if tag == high:
                        step[tag] = step[low]
                        continue
                    step[tag] = next_tag
                    next_tag += 1
                current = apply_tag_mapping(current, step)
                total = {
                    old: step[intermediate]
                    for old, intermediate in total.items()
                }
                fused = True
                break
        if not fused:
            raise CapacityError(
                f"cannot fit {graph.num_tags} tags into {max_tags} lossless "
                "queues: no adjacent tag classes can merge without a CBD"
            )
    report = verify_tagged_graph(current)
    if not report.deadlock_free:
        raise AssertionError("internal error: fused graph failed verification")
    return current, total
