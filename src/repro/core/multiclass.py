"""Multiple application classes over shared tags (paper §6).

Operators often dedicate separate lossless classes to different traffic
types (e.g. data vs. congestion-notification packets in DCQCN). Treating
each of N classes independently over an M-bounce Clos ELP would cost
``N * (M + 1)`` lossless priorities; the paper's trick is to *stagger*
the classes: class ``c`` (0-based) injects packets with tag ``1 + c`` and
each bounce still increments the tag by one, so with equal bounce budgets
M all classes together need only ``M + N`` tags.

Because the switch rule table is shared (a rule matches only on
``(tag, InPort, OutPort)`` — it cannot tell classes apart), demotion to
the lossy class happens at the *global* maximum tag. A class that starts
lower therefore enjoys a few bonus bounces; the real trade-off is reduced
isolation: a once-bounced class-0 packet shares its priority queue with
fresh class-1 packets.

Deadlock freedom is unaffected — each tag still carries only up-down path
segments and tag updates remain monotone, so both Theorem 5.1
requirements keep holding (verified by :meth:`MultiClassClosTagger.tagged_graph`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.clos import ClosTagger
from repro.core.tags import INITIAL_TAG, LOSSY_TAG, TaggedGraph
from repro.exceptions import TaggingError
from repro.topology.base import Topology


@dataclass(frozen=True)
class TrafficClass:
    """One application class: its name and its bounce tolerance."""

    name: str
    max_bounces: int


class MultiClassClosTagger:
    """Staggered multi-class bounce tagger for layered fabrics.

    Class ``c`` (0-based, in declaration order) injects packets with tag
    ``INITIAL_TAG + c``. All classes share one rule table, implemented by
    an internal :class:`ClosTagger` whose lossless tag space spans
    ``max(c + M_c) + 1`` tags.
    """

    def __init__(self, topo: Topology, classes: Sequence[TrafficClass]) -> None:
        if not classes:
            raise TaggingError("need at least one traffic class")
        names = [cls.name for cls in classes]
        if len(set(names)) != len(names):
            raise TaggingError("traffic class names must be unique")
        for cls in classes:
            if cls.max_bounces < 0:
                raise TaggingError(f"negative bounce budget for {cls.name!r}")
        self.topo = topo
        self.classes = list(classes)
        self._index = {cls.name: i for i, cls in enumerate(classes)}
        # Shared rule table: one tagger whose budget covers the whole
        # staggered tag space.
        self._shared = ClosTagger(
            topo,
            max_bounces=max(
                i + cls.max_bounces for i, cls in enumerate(classes)
            ),
        )

    @property
    def num_lossless_tags(self) -> int:
        """Distinct lossless tags: ``max(c + M_c) + 1`` (paper: M + N)."""
        return self._shared.num_lossless_tags

    def class_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise TaggingError(f"unknown traffic class {name!r}") from None

    def initial_tag(self, name: str) -> int:
        """Tag injected for packets of class ``name``."""
        return INITIAL_TAG + self.class_index(name)

    def guaranteed_bounces(self, name: str) -> int:
        """Bounces class ``name`` survives before demotion.

        At least the class's declared budget; classes injected at lower
        tags pick up extra headroom from the shared demotion threshold.
        """
        return self._shared.max_lossless_tag - self.initial_tag(name)

    def rewrite(self, switch: str, in_port: int, out_port: int, tag: int) -> int:
        """The shared rule table's rewrite (class-agnostic)."""
        return self._shared.rewrite(switch, in_port, out_port, tag)

    def tag_along_path(self, name: str, path: Sequence[str]) -> List[int]:
        """Arriving tag per hop for a packet of class ``name`` on ``path``."""
        tags: List[int] = []
        tag = self.initial_tag(name)
        for i in range(len(path) - 1):
            if i == 0:
                tags.append(tag)
                continue
            prev_node, node, next_node = path[i - 1], path[i], path[i + 1]
            if not self.topo.node(node).is_switch:
                raise TaggingError(f"non-switch transit node {node!r}")
            tag = self.rewrite(
                node,
                self.topo.port_to(node, prev_node),
                self.topo.port_to(node, next_node),
                tag,
            )
            tags.append(tag)
        return tags

    def path_stays_lossless(self, name: str, path: Sequence[str]) -> bool:
        return all(tag != LOSSY_TAG for tag in self.tag_along_path(name, path))

    def tagged_graph(self) -> TaggedGraph:
        """Tagged graph of the shared deployment, for verification.

        Host-facing ingress ports carry one node per class (its staggered
        initial tag); everything else follows the shared rewrite.
        """
        host_tags = [self.initial_tag(cls.name) for cls in self.classes]
        return self._shared.tagged_graph(host_tags=host_tags)


def naive_priority_count(classes: Sequence[TrafficClass]) -> int:
    """Priorities used by the naive per-class design: ``sum(M_c + 1)``."""
    return sum(cls.max_bounces + 1 for cls in classes)
