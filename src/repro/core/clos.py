"""Topology-aware Tagger for Clos/FatTree fabrics (paper §4.3).

The Clos scheme needs no path enumeration at all. Packets start with tag
1; every time a ToR or leaf switch sees a packet *come down and go back
up* (a bounce), it increments the tag; spines never change tags. Tag
``i`` maps to lossless priority ``i`` for ``i <= k + 1`` where ``k`` is
the operator's bounce budget; packets that bounce more than ``k`` times
exceed the largest lossless tag and are demoted to the lossy class.

The paper proves this is *optimal*: making all <= k-bounce paths lossless
requires at least ``k + 1`` lossless priorities (§4.4, pigeonhole).

The implementation generalizes to any strictly layered topology (every
link connects adjacent layers): a bounce is "ingress port faces a higher
layer AND egress port faces a higher layer".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.tags import INITIAL_TAG, LOSSY_TAG, TaggedGraph
from repro.exceptions import TaggingError
from repro.topology.base import Topology


@dataclass(frozen=True)
class ClosTagger:
    """Bounce-counting tag policy for a layered fabric.

    Attributes:
        topo: A layered topology (every switch has a ``layer``).
        max_bounces: Bounce budget ``k``; paths with more bounces go lossy.
    """

    topo: Topology
    max_bounces: int = 1

    def __post_init__(self) -> None:
        if self.max_bounces < 0:
            raise TaggingError("max_bounces must be >= 0")
        for name in self.topo.switches:
            if self.topo.layer_of(name) is None:
                raise TaggingError(
                    f"switch {name!r} has no layer; ClosTagger needs a "
                    "layered topology"
                )

    @property
    def num_lossless_tags(self) -> int:
        """Lossless priorities required: ``k + 1`` (paper-optimal)."""
        return self.max_bounces + 1

    @property
    def max_lossless_tag(self) -> int:
        return INITIAL_TAG + self.max_bounces

    # ------------------------------------------------------------------
    # The tag policy itself
    # ------------------------------------------------------------------
    def is_bounce(self, switch: str, in_port: int, out_port: int) -> bool:
        """Does transiting ``switch`` this way reverse DOWN -> UP?"""
        my_layer = self.topo.layer_of(switch)
        in_peer = self.topo.peer_on_port(switch, in_port)
        out_peer = self.topo.peer_on_port(switch, out_port)
        in_layer = self.topo.layer_of(in_peer)
        out_layer = self.topo.layer_of(out_peer)
        return (
            in_layer is not None
            and out_layer is not None
            and in_layer > my_layer
            and out_layer > my_layer
        )

    def rewrite(self, switch: str, in_port: int, out_port: int, tag: int) -> int:
        """New tag for a packet transiting ``switch``.

        Mirrors the match-action behaviour: lossy stays lossy; a bounce
        increments the tag; exceeding the lossless budget demotes to
        :data:`LOSSY_TAG`.
        """
        if tag == LOSSY_TAG:
            return LOSSY_TAG
        if tag < INITIAL_TAG or tag > self.max_lossless_tag:
            return LOSSY_TAG
        new_tag = tag + 1 if self.is_bounce(switch, in_port, out_port) else tag
        if new_tag > self.max_lossless_tag:
            return LOSSY_TAG
        return new_tag

    def tag_along_path(self, path: Sequence[str]) -> List[int]:
        """Tag carried by a packet as it arrives at each hop of ``path``.

        Entry ``i`` is the tag on the wire into ``path[i + 1]``; the list
        has ``len(path) - 1`` entries. The packet is injected with
        :data:`INITIAL_TAG`; once demoted, it stays :data:`LOSSY_TAG`.
        """
        tags: List[int] = []
        tag = INITIAL_TAG
        for i in range(len(path) - 1):
            if i == 0:
                tags.append(tag)
                continue
            prev_node, node, next_node = path[i - 1], path[i], path[i + 1]
            if not self.topo.node(node).is_switch:
                raise TaggingError(f"non-switch transit node {node!r}")
            in_port = self.topo.port_to(node, prev_node)
            out_port = self.topo.port_to(node, next_node)
            tag = self.rewrite(node, in_port, out_port, tag)
            tags.append(tag)
        return tags

    def path_stays_lossless(self, path: Sequence[str]) -> bool:
        """True iff no hop of ``path`` is demoted to the lossy class."""
        return all(tag != LOSSY_TAG for tag in self.tag_along_path(path))

    # ------------------------------------------------------------------
    # Tagged-graph export (for verification and CBD analysis)
    # ------------------------------------------------------------------
    def tagged_graph(self, host_tags: Sequence[int] = (INITIAL_TAG,)) -> TaggedGraph:
        """The complete tagged graph induced by this policy.

        Covers *every* physical trajectory the fabric allows (not just an
        enumerated ELP): for each transit pattern ``A -> B -> C`` and each
        live tag, an edge with the rewritten tag — unless the rewrite
        demotes the packet, in which case it leaves the lossless world and
        contributes no dependency. Host-facing ingress ports appear with
        ``host_tags`` only (hosts inject fresh packets; multi-class
        deployments inject one staggered tag per class).
        """
        graph = TaggedGraph()
        for switch in self.topo.switches:
            ports = self.topo.ports(switch)
            for in_port, in_peer in ports.items():
                in_is_host = self.topo.node(in_peer).is_host
                live_tags = (
                    list(host_tags)
                    if in_is_host
                    else list(range(INITIAL_TAG, self.max_lossless_tag + 1))
                )
                for tag in live_tags:
                    node = ((switch, in_port), tag)
                    graph.add_node(node)
                    for out_port, out_peer in ports.items():
                        if out_port == in_port:
                            continue
                        if not self.topo.node(out_peer).is_switch:
                            continue
                        new_tag = self.rewrite(switch, in_port, out_port, tag)
                        if new_tag == LOSSY_TAG:
                            continue
                        peer_in_port = self.topo.port_to(out_peer, switch)
                        graph.add_edge(
                            node, ((out_peer, peer_in_port), new_tag)
                        )
        return graph
