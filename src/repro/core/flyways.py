"""Tagger for fabrics with same-layer express links (paper §6).

Flyways/Helios/Projector augment a Clos with direct ToR-to-ToR links.
Those links are *flat* (same layer), so the up-down bounce rule of
:class:`~repro.core.clos.ClosTagger` is no longer sufficient: a packet
could descend, cross a flat link, and climb again without ever turning
"down then up" at a single switch — or circulate around a ring of
express links — re-creating CBDs inside one priority.

The fix generalizes the bounce rule to a *phase order*. Each hop has a
direction: UP (toward a higher layer), FLAT (express) or DOWN. Within a
tag, a trajectory must follow the phase order ``UP* FLAT? DOWN*`` — climb
as much as you like, cross at most one express link, then only descend.
Any transit that violates the order increments the tag:

- DOWN -> UP (the classic bounce),
- FLAT -> UP (climbing after an express crossing),
- DOWN -> FLAT (an express crossing after descending),
- FLAT -> FLAT (a second consecutive express hop — this is what breaks
  express-ring cycles).

Within one tag the trajectory's layer profile is unimodal with at most
one flat step, so no cycle fits in a single priority (R1), and the tag
only ever grows (R2) — Theorem 5.1 applies unchanged, which the test
suite confirms by running the generic verifier on the full tagged graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.tags import INITIAL_TAG, LOSSY_TAG, TaggedGraph
from repro.exceptions import TaggingError
from repro.topology.base import Topology

#: Hop phases, ordered: a same-tag trajectory may only move forward.
UP, FLAT, DOWN = 0, 1, 2


@dataclass(frozen=True)
class FlywaysTagger:
    """Phase-ordered tag policy for layered fabrics with express links.

    Attributes:
        topo: Layered topology, possibly with same-layer express links.
        max_increments: How many phase-order violations a packet may
            accumulate before demotion to lossy. A plain up-down path
            needs 0; a single-bounce reroute needs 1; a typical express
            path "up-down, express, up-down" needs 2.
    """

    topo: Topology
    max_increments: int = 2

    def __post_init__(self) -> None:
        if self.max_increments < 0:
            raise TaggingError("max_increments must be >= 0")
        for name in self.topo.switches:
            if self.topo.layer_of(name) is None:
                raise TaggingError(
                    f"switch {name!r} has no layer; FlywaysTagger needs a "
                    "layered topology"
                )

    @property
    def num_lossless_tags(self) -> int:
        return self.max_increments + 1

    @property
    def max_lossless_tag(self) -> int:
        return INITIAL_TAG + self.max_increments

    # ------------------------------------------------------------------
    # Phase machinery
    # ------------------------------------------------------------------
    def _phase_in(self, switch: str, in_port: int) -> int:
        """Phase the packet was in when it arrived at ``switch``."""
        peer = self.topo.peer_on_port(switch, in_port)
        peer_layer = self.topo.layer_of(peer)
        my_layer = self.topo.layer_of(switch)
        if peer_layer is None:  # host: packets from hosts are climbing
            return UP
        if peer_layer < my_layer:
            return UP
        if peer_layer > my_layer:
            return DOWN
        return FLAT

    def _phase_out(self, switch: str, out_port: int) -> int:
        peer = self.topo.peer_on_port(switch, out_port)
        peer_layer = self.topo.layer_of(peer)
        my_layer = self.topo.layer_of(switch)
        if peer_layer is None:  # host delivery: the final descent
            return DOWN
        if peer_layer > my_layer:
            return UP
        if peer_layer < my_layer:
            return DOWN
        return FLAT

    def violates_order(self, switch: str, in_port: int, out_port: int) -> bool:
        """Does this transit step the phase order backwards?"""
        phase_in = self._phase_in(switch, in_port)
        phase_out = self._phase_out(switch, out_port)
        if phase_in == FLAT and phase_out == FLAT:
            return True  # consecutive express hops: break express rings
        return phase_out < phase_in

    def rewrite(self, switch: str, in_port: int, out_port: int, tag: int) -> int:
        if tag == LOSSY_TAG:
            return LOSSY_TAG
        if tag < INITIAL_TAG or tag > self.max_lossless_tag:
            return LOSSY_TAG
        new_tag = (
            tag + 1 if self.violates_order(switch, in_port, out_port) else tag
        )
        if new_tag > self.max_lossless_tag:
            return LOSSY_TAG
        return new_tag

    # ------------------------------------------------------------------
    # Path helpers (mirror ClosTagger's API)
    # ------------------------------------------------------------------
    def tag_along_path(self, path: Sequence[str]) -> List[int]:
        """Arriving tag per hop (see ClosTagger.tag_along_path)."""
        tags: List[int] = []
        tag = INITIAL_TAG
        for i in range(len(path) - 1):
            if i == 0:
                tags.append(tag)
                continue
            prev_node, node, next_node = path[i - 1], path[i], path[i + 1]
            if not self.topo.node(node).is_switch:
                raise TaggingError(f"non-switch transit node {node!r}")
            tag = self.rewrite(
                node,
                self.topo.port_to(node, prev_node),
                self.topo.port_to(node, next_node),
                tag,
            )
            tags.append(tag)
        return tags

    def path_stays_lossless(self, path: Sequence[str]) -> bool:
        return all(tag != LOSSY_TAG for tag in self.tag_along_path(path))

    def tagged_graph(self, host_tags: Sequence[int] = (INITIAL_TAG,)) -> TaggedGraph:
        """Complete induced tagged graph (see ClosTagger.tagged_graph)."""
        graph = TaggedGraph()
        for switch in self.topo.switches:
            ports = self.topo.ports(switch)
            for in_port, in_peer in ports.items():
                in_is_host = self.topo.node(in_peer).is_host
                live_tags = (
                    list(host_tags)
                    if in_is_host
                    else list(range(INITIAL_TAG, self.max_lossless_tag + 1))
                )
                for tag in live_tags:
                    node = ((switch, in_port), tag)
                    graph.add_node(node)
                    for out_port, out_peer in ports.items():
                        if out_port == in_port:
                            continue
                        if not self.topo.node(out_peer).is_switch:
                            continue
                        new_tag = self.rewrite(switch, in_port, out_port, tag)
                        if new_tag == LOSSY_TAG:
                            continue
                        peer_in = self.topo.port_to(out_peer, switch)
                        graph.add_edge(node, ((out_peer, peer_in), new_tag))
        return graph
