"""Deadlock-freedom verification of tagging schemes (paper Theorem 5.1).

A tagged graph guarantees deadlock freedom iff:

- **R1** — for every tag ``k``, the same-tag subgraph ``G_k`` is acyclic
  (an edge in ``G_k`` is a buffer dependency; a cycle is a CBD);
- **R2** — no edge decreases the tag (the packet moves unidirectionally
  through a DAG of priority classes, so no CBD can form *across* tags).

:func:`verify_tagged_graph` checks both and returns a
:class:`VerificationReport` certificate; :func:`assert_deadlock_free`
raises :class:`~repro.exceptions.VerificationError` with a concrete
counterexample (the offending cycle or edge) when a requirement fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.parallel import find_first_tag_cycle
from repro.core.tags import TaggedGraph, TEdge, TNode
from repro.exceptions import VerificationError


@dataclass(frozen=True)
class VerificationReport:
    """Certificate of a verification run.

    Attributes:
        deadlock_free: Overall verdict.
        num_tags: Number of distinct tags (= lossless priorities needed).
        nodes_per_tag: Tag -> node count.
        intra_edges_per_tag: Tag -> edge count within ``G_k``.
        cross_edges: Number of tag-increasing edges.
        tag_cycle: A cycle violating R1, if any (nodes in order).
        decreasing_edge: An edge violating R2, if any.
    """

    deadlock_free: bool
    num_tags: int
    nodes_per_tag: Dict[int, int]
    intra_edges_per_tag: Dict[int, int]
    cross_edges: int
    tag_cycle: Optional[List[TNode]] = None
    decreasing_edge: Optional[TEdge] = None

    def summary(self) -> str:
        verdict = "DEADLOCK-FREE" if self.deadlock_free else "UNSAFE"
        return (
            f"{verdict}: {self.num_tags} tag(s), "
            f"{sum(self.nodes_per_tag.values())} nodes, "
            f"{sum(self.intra_edges_per_tag.values())} intra-tag + "
            f"{self.cross_edges} cross-tag edges"
        )


def verify_tagged_graph(
    graph: TaggedGraph, workers: int = 1, seed: int = 0
) -> VerificationReport:
    """Check requirements R1 and R2; never raises on violation.

    Args:
        workers: Per-tag acyclicity checks fan out over this many
            forked processes when > 1 (see :mod:`repro.core.parallel`);
            the verdict is identical at every worker count.
        seed: Shuffles the parallel dispatch order only; result-neutral.
    """
    decreasing: Optional[TEdge] = None
    cross = 0
    for src, dst in graph.edges():
        if dst[1] < src[1]:
            if decreasing is None:
                decreasing = (src, dst)
        elif dst[1] > src[1]:
            cross += 1

    nodes_per_tag: Dict[int, int] = {}
    intra_per_tag: Dict[int, int] = {}
    for tag in graph.tags():
        nodes_per_tag[tag] = len(graph.nodes_with_tag(tag))
        intra_per_tag[tag] = len(graph.tag_subgraph_edges(tag))
    tag_cycle: Optional[List[TNode]] = find_first_tag_cycle(
        graph, workers=workers, seed=seed
    )

    return VerificationReport(
        deadlock_free=decreasing is None and tag_cycle is None,
        num_tags=graph.num_tags,
        nodes_per_tag=nodes_per_tag,
        intra_edges_per_tag=intra_per_tag,
        cross_edges=cross,
        tag_cycle=tag_cycle,
        decreasing_edge=decreasing,
    )


def assert_deadlock_free(
    graph: TaggedGraph, workers: int = 1, seed: int = 0
) -> VerificationReport:
    """Verify and raise :class:`VerificationError` with diagnostics on failure."""
    report = verify_tagged_graph(graph, workers=workers, seed=seed)
    if report.decreasing_edge is not None:
        src, dst = report.decreasing_edge
        raise VerificationError(
            f"requirement R2 violated: edge {src} -> {dst} decreases the tag"
        )
    if report.tag_cycle is not None:
        tag = report.tag_cycle[0][1]
        pretty = " -> ".join(f"{sw}:{port}" for (sw, port), _ in report.tag_cycle)
        raise VerificationError(
            f"requirement R1 violated: tag {tag} contains the cycle {pretty}"
        )
    return report
