"""Tagger core: tagged graphs, tagging algorithms, rules, verification.

The package implements the paper's primary contribution:

- :class:`~repro.core.tags.TaggedGraph` and helpers (§5 formalization);
- :func:`~repro.core.bruteforce.bruteforce_tagging` — Algorithm 1;
- :func:`~repro.core.greedy.greedy_minimize` — Algorithm 2;
- :class:`~repro.core.clos.ClosTagger` — the optimal Clos scheme (§4);
- :class:`~repro.core.multiclass.MultiClassClosTagger` — §6;
- rule generation and TCAM compression (§5.2, §7);
- Theorem 5.1 verification;
- :class:`~repro.core.planner.TaggerPlan` — the high-level entry point.
"""

from repro.core.bruteforce import bruteforce_tagging, longest_path_hops
from repro.core.clos import ClosTagger
from repro.core.compression import (
    CompressionStats,
    TcamEntry,
    compress_in_ports,
    compress_joint,
    compression_stats,
    expand,
    first_match,
    safeguard_entry,
    tcam_program,
)
from repro.core.elp import (
    ElpSet,
    PairwiseElpProvider,
    ShortestPathElpProvider,
    UpDownElpProvider,
    bcube_elp,
    clos_bounce_elp,
    clos_updown_elp,
    jellyfish_elp,
    shortest_path_elp,
)
from repro.core.determinize import (
    DeterministicMinimizer,
    DeterministicTagging,
    deterministic_minimize,
)
from repro.core.discovery import (
    elp_under_failures,
    single_link_failure_scenarios,
    trace_elp,
)
from repro.core.flyways import FlywaysTagger
from repro.core.greedy import greedy_minimize
from repro.core.multiclass import MultiClassClosTagger, TrafficClass, naive_priority_count
from repro.core.pipeline import LOSSY_QUEUE, PipelineConfig, QueueMap
from repro.core.queuefit import (
    apply_tag_mapping,
    fit_to_queues,
    merge_is_safe,
    remap_tables,
)
from repro.core.planner import TaggerPlan
from repro.core.replan import IncrementalPlanner, ReplanResult
from repro.core.rules import (
    MatchActionRule,
    RuleDiff,
    RuleGenerationReport,
    RuleTable,
    canonical_tables,
    coverage_report,
    diff_tables,
    materialize_policy_rules,
    rules_from_tagged_graph,
    rules_to_tagged_graph,
    tables_equal,
)
from repro.core.parallel import find_first_tag_cycle
from repro.core.symmetry import (
    STRATEGIES,
    STRATEGY_EXHAUSTIVE,
    STRATEGY_SYMMETRY,
    SymmetryCertificate,
    certify,
    check_strategy,
)
from repro.core.ttl_fallback import TtlFallback
from repro.core.tags import (
    INITIAL_TAG,
    LOSSY_TAG,
    PortKey,
    TaggedGraph,
    TNode,
    ingress_hops,
    tnode,
    transit_triples,
)
from repro.core.verification import (
    VerificationReport,
    assert_deadlock_free,
    verify_tagged_graph,
)

__all__ = [
    "bruteforce_tagging",
    "longest_path_hops",
    "ClosTagger",
    "CompressionStats",
    "TcamEntry",
    "compress_in_ports",
    "compress_joint",
    "compression_stats",
    "expand",
    "first_match",
    "safeguard_entry",
    "tcam_program",
    "ElpSet",
    "PairwiseElpProvider",
    "ShortestPathElpProvider",
    "UpDownElpProvider",
    "bcube_elp",
    "clos_bounce_elp",
    "clos_updown_elp",
    "jellyfish_elp",
    "shortest_path_elp",
    "greedy_minimize",
    "FlywaysTagger",
    "TtlFallback",
    "deterministic_minimize",
    "DeterministicMinimizer",
    "DeterministicTagging",
    "IncrementalPlanner",
    "ReplanResult",
    "trace_elp",
    "elp_under_failures",
    "single_link_failure_scenarios",
    "MultiClassClosTagger",
    "TrafficClass",
    "naive_priority_count",
    "LOSSY_QUEUE",
    "PipelineConfig",
    "QueueMap",
    "fit_to_queues",
    "merge_is_safe",
    "apply_tag_mapping",
    "remap_tables",
    "TaggerPlan",
    "MatchActionRule",
    "RuleGenerationReport",
    "RuleTable",
    "canonical_tables",
    "coverage_report",
    "diff_tables",
    "tables_equal",
    "RuleDiff",
    "materialize_policy_rules",
    "rules_from_tagged_graph",
    "rules_to_tagged_graph",
    "INITIAL_TAG",
    "LOSSY_TAG",
    "PortKey",
    "TaggedGraph",
    "TNode",
    "ingress_hops",
    "tnode",
    "transit_triples",
    "VerificationReport",
    "assert_deadlock_free",
    "verify_tagged_graph",
    "find_first_tag_cycle",
    "STRATEGIES",
    "STRATEGY_EXHAUSTIVE",
    "STRATEGY_SYMMETRY",
    "SymmetryCertificate",
    "certify",
    "check_strategy",
]
