"""The TTL-based bounce detector the paper considered — and rejected.

§4.2: "One way for S2 (and any switches afterwards) to recognize a
bounced packet is by TTL. Since the ELP consists of shortest paths, a
bounced packet will have lower than expected TTL. However, TTL values are
set by end hosts, so a more controllable way is for L1 to provide this
information via a special tag."  (§7 adds that TTL is also decremented by
the forwarding pipeline itself, complicating rule structure.)

This module implements the TTL idea faithfully so its limits can be
*demonstrated* rather than asserted: a switch demotes any packet whose
hop count (``initial_ttl - ttl``) exceeds the longest ELP path. That is
implementable with local state only — but it is **not** a deadlock
prevention scheme, and the test suite shows it failing against *both*
hazards:

- **bounces**: packets on a bounced path are indistinguishable from
  packets early on a long lossless path until they exceed the global
  length bound, so the single lossless priority still contains
  down-then-up segments and the Fig. 3 CBD survives;
- **loops**: one might hope looping packets age out past any finite
  bound — but deadlock formation races ageing and wins: the loop's
  buffers fill with *young* packets (and fresh ones keep arriving at
  hop count 1), mutual PAUSE freezes them, and frozen packets never
  take another hop to age. The Fig. 11 deadlock forms with zero
  demotions at every bound.

Tagger demotes on the packet's *structure* (its second down-up turn),
at the very transit that would complete a cycle — cumulative hop
counting cannot replicate that, which is the executable version of the
paper's decision to carry an explicit tag.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineConfig, QueueMap
from repro.core.rules import RuleTable
from repro.core.tags import INITIAL_TAG, LOSSY_TAG, TaggedGraph
from repro.exceptions import TaggingError
from repro.topology.base import Topology


@dataclass(frozen=True)
class TtlFallback:
    """Hop-count demotion: lossless while hops <= bound, lossy beyond.

    The simulator exposes a packet's consumed hops through its tag in
    this scheme: the "tag" *is* the hop count + 1, incremented at every
    switch, with every value up to ``max_hops + 1`` mapped to the SAME
    single lossless priority. That encodes exactly the information a real
    switch could read from the TTL field.
    """

    topo: Topology
    max_hops: int

    def __post_init__(self) -> None:
        if self.max_hops < 1:
            raise TaggingError("max_hops must be >= 1")

    @property
    def num_lossless_tags(self) -> int:
        """Distinct tag values in flight (all share one priority)."""
        return self.max_hops + 1

    def rewrite(self, switch: str, in_port: int, out_port: int, tag: int) -> int:
        if tag == LOSSY_TAG:
            return LOSSY_TAG
        if tag < INITIAL_TAG or tag > self.max_hops:
            return LOSSY_TAG
        return tag + 1

    def pipeline_config(self) -> PipelineConfig:
        """Single-lossless-queue pipeline implementing the TTL check."""
        queue_map = QueueMap(
            mapping=tuple(
                (tag, 1) for tag in range(1, self.num_lossless_tags + 1)
            )
        )
        table = RuleTable(switch="*", policy=self.rewrite)
        return PipelineConfig(rule_table=table, queue_map=queue_map)

    def tagged_graph(self) -> TaggedGraph:
        """The induced dependency structure, for the verifier.

        All hop-count tags share one priority queue, so for deadlock
        analysis they are ONE tag class: the graph places every reachable
        ingress port in tag 1 with an edge for every transit that stays
        under the hop bound. On any fabric with a physical cycle shorter
        than ``max_hops`` this contains a CBD — which is the point.
        """
        graph = TaggedGraph()
        for switch in self.topo.switches:
            ports = self.topo.ports(switch)
            for in_port, in_peer in ports.items():
                node = ((switch, in_port), 1)
                graph.add_node(node)
                for out_port, out_peer in ports.items():
                    if out_port == in_port:
                        continue
                    if not self.topo.node(out_peer).is_switch:
                        continue
                    peer_in = self.topo.port_to(out_peer, switch)
                    graph.add_edge(node, ((out_peer, peer_in), 1))
        return graph
