"""Algorithm 1 — brute-force tagging (paper §5.2).

For every ELP path, walk its hops assigning tag 1 to the first ingress
port, tag 2 to the second, and so on; add an edge between consecutive
hops. The resulting graph trivially satisfies both deadlock-freedom
requirements:

- R1: an edge always goes from tag ``t`` to tag ``t + 1``, so no per-tag
  subgraph ``G_k`` has any edge at all, let alone a cycle;
- R2: tags strictly increase along every edge.

The price is tag count: as many tags as the longest ELP path has hops
(5 priorities for 3-layer Clos up-down routing). Algorithm 2
(:mod:`repro.core.greedy`) compresses this.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.tags import INITIAL_TAG, TaggedGraph, ingress_hops
from repro.exceptions import TaggingError
from repro.routing.base import is_loop_free
from repro.topology.base import Topology


def bruteforce_tagging(
    topo: Topology,
    elp: Iterable[Sequence[str]],
    require_loop_free: bool = True,
) -> TaggedGraph:
    """Run Algorithm 1 over an ELP path set.

    Args:
        topo: The topology the paths live in.
        elp: Expected lossless paths (node-name sequences; may include host
            endpoints, which map to the edge switches' host-facing ports).
        require_loop_free: Reject paths that revisit a node — the paper's
            only restriction on ELP membership (§6, "Specifying ELP").

    Returns:
        The brute-force :class:`TaggedGraph`.

    Raises:
        TaggingError: On a looping path (when ``require_loop_free``) or an
            empty ELP.
    """
    graph = TaggedGraph()
    saw_path = False
    for path in elp:
        saw_path = True
        if require_loop_free and not is_loop_free(path):
            raise TaggingError(f"ELP path revisits a node: {tuple(path)}")
        hops = ingress_hops(topo, path)
        tag = INITIAL_TAG
        last_node = None
        for port in hops:
            node = (port, tag)
            graph.add_node(node)
            if last_node is not None:
                graph.add_edge(last_node, node)
            last_node = node
            tag += 1
    if not saw_path:
        raise TaggingError("empty ELP: nothing to tag")
    return graph


def longest_path_hops(topo: Topology, elp: Iterable[Sequence[str]]) -> int:
    """Number of tags Algorithm 1 will use: the longest hop count in ELP."""
    longest = 0
    for path in elp:
        longest = max(longest, len(ingress_hops(topo, path)))
    return longest
