"""Expected Lossless Path (ELP) set construction (paper §4.1, §6).

The ELP is the operator's declaration of which paths must be lossless.
The only hard requirement is loop-freedom; the paper suggests:

- Clos/FatTree: all shortest up-down paths, optionally plus all paths
  with up to *k* bounces (so transient reroutes stay lossless);
- Jellyfish/unstructured: shortest paths between all ToR pairs,
  optionally plus extra random paths for redundancy (Table 5, last row);
- BCube: the default digit-correcting routes.

An :class:`ElpSet` is a thin validated container so downstream code can
trust the paths it holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import RoutingError, TaggingError
from repro.routing.base import Path, is_loop_free, validate_path
from repro.routing.bounce import all_bounce_paths
from repro.routing.shortest import (
    all_shortest_paths,
    bfs_distances,
    pairwise_shortest_paths,
    random_loopfree_paths,
)
from repro.routing.updown import all_updown_paths, updown_paths
from repro.topology.base import Topology
from repro.topology.bcube import bcube_default_route, bcube_servers


@dataclass
class ElpSet:
    """A validated collection of expected lossless paths."""

    topo: Topology
    paths: List[Path] = field(default_factory=list)
    description: str = ""

    def add(self, path: Sequence[str]) -> None:
        """Validate (exists in topology, loop-free) and append a path."""
        canonical = validate_path(self.topo, path, allow_failed=True)
        if not is_loop_free(canonical):
            raise TaggingError(f"ELP paths must be loop-free: {canonical}")
        self.paths.append(canonical)

    def extend(self, paths: Iterable[Sequence[str]]) -> None:
        for path in paths:
            self.add(path)

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self.paths)

    def longest_hops(self) -> int:
        """Longest path length in hops (bounds Algorithm 1's tag count)."""
        return max((len(p) - 1 for p in self.paths), default=0)

    def dedupe(self) -> None:
        seen = set()
        unique: List[Path] = []
        for path in self.paths:
            if path not in seen:
                seen.add(path)
                unique.append(path)
        self.paths = unique


def clos_updown_elp(topo: Topology, endpoints: Optional[Sequence[str]] = None) -> ElpSet:
    """ELP = all shortest up-down ToR-to-ToR paths (paper's baseline)."""
    elp = ElpSet(topo, description="shortest up-down paths")
    elp.extend(all_updown_paths(topo, endpoints=endpoints))
    return elp


def clos_bounce_elp(
    topo: Topology,
    max_bounces: int,
    endpoints: Optional[Sequence[str]] = None,
    max_paths_per_pair: Optional[int] = None,
) -> ElpSet:
    """ELP = all paths with up to ``max_bounces`` bounces (includes 0).

    This is the set the paper's Clos tagger makes lossless with
    ``max_bounces + 1`` priorities. Warning: enumeration is exponential;
    use :class:`repro.core.clos.ClosTagger` for large fabrics.
    """
    elp = ElpSet(
        topo, description=f"up to {max_bounces}-bounce paths"
    )
    elp.extend(
        all_bounce_paths(
            topo,
            max_bounces,
            endpoints=endpoints,
            max_paths_per_pair=max_paths_per_pair,
        )
    )
    elp.dedupe()
    return elp


def shortest_path_elp(
    topo: Topology,
    endpoints: Optional[Sequence[str]] = None,
    per_pair: int = 1,
) -> ElpSet:
    """ELP = shortest paths between endpoint pairs (Jellyfish default)."""
    if endpoints is None:
        endpoints = sorted(topo.switches)
    elp = ElpSet(topo, description="pairwise shortest paths")
    elp.extend(pairwise_shortest_paths(topo, endpoints, per_pair=per_pair))
    return elp


def jellyfish_elp(
    topo: Topology,
    extra_random_paths: int = 0,
    seed: int = 7,
) -> ElpSet:
    """Table 5 ELP: all-pairs shortest paths (+ optional random paths)."""
    endpoints = sorted(name for name in topo.switches)
    elp = shortest_path_elp(topo, endpoints=endpoints)
    if extra_random_paths:
        elp.description += f" + {extra_random_paths} random paths"
        elp.extend(
            random_loopfree_paths(
                topo, extra_random_paths, endpoints=endpoints, seed=seed
            )
        )
    elp.dedupe()
    return elp


# ----------------------------------------------------------------------
# Pairwise ELP providers (incremental re-planning substrate)
# ----------------------------------------------------------------------
class PairwiseElpProvider:
    """An ELP expressed as an independent function of each endpoint pair.

    The incremental re-planner (:mod:`repro.core.replan`) exploits two
    contract guarantees that both concrete providers below honor:

    1. **Pair independence** — :meth:`pair_paths` for ``(src, dst)``
       depends only on the active topology, never on other pairs, so a
       dirty pair can be recomputed in isolation and the result is
       bit-identical to what a from-scratch :meth:`build` would hold.
    2. **Locality under churn** — failing a link can change a pair's
       path set only if (a) one of the pair's current paths traverses
       that link, or (b) the pair is already *damaged* (its current set
       differs from the no-failure baseline). Restoring a link can only
       change damaged pairs. This is what makes dirty-set propagation
       sound; it holds for shortest-path selection because removing
       links never shortens distances (see docs/PERFORMANCE.md for the
       argument, including the capped-ECMP and up-down cases).
    """

    description: str = "pairwise ELP"

    def endpoints(self, topo: Topology) -> List[str]:
        raise NotImplementedError

    def pair_paths(self, topo: Topology, src: str, dst: str) -> Tuple[Path, ...]:
        raise NotImplementedError

    def ordered_pairs(self, topo: Topology) -> List[Tuple[str, str]]:
        names = self.endpoints(topo)
        return [(s, d) for s in names for d in names if s != d]

    def build(self, topo: Topology) -> ElpSet:
        """From-scratch ELP: concatenation over all ordered pairs."""
        elp = ElpSet(topo, description=self.description)
        for src, dst in self.ordered_pairs(topo):
            elp.extend(self.pair_paths(topo, src, dst))
        return elp

    def iter_paths(self, topo: Topology) -> Iterator[Path]:
        """Stream the ELP lazily, one validated path at a time.

        Yields exactly the paths (and order) of :meth:`build`, applying
        the same validation :meth:`ElpSet.add` would, but never holds
        more than one pair's enumeration in memory — Algorithm 1 can
        consume the stream incrementally, so at hyperscale the planner
        avoids materializing the full path list up front.
        """
        for src, dst in self.ordered_pairs(topo):
            for path in self.pair_paths(topo, src, dst):
                canonical = validate_path(topo, path, allow_failed=True)
                if not is_loop_free(canonical):
                    raise TaggingError(
                        f"ELP paths must be loop-free: {canonical}"
                    )
                yield canonical


@dataclass
class UpDownElpProvider(PairwiseElpProvider):
    """Per-pair view of :func:`clos_updown_elp` (paper baseline ELP).

    ``build`` produces exactly the path set of
    ``clos_updown_elp(topo, endpoints)``: unreachable pairs are skipped
    silently, and per-pair results are the sorted deduplicated shortest
    up-down paths. Endpoints must be layered switches; the locality
    contract is proven for lowest-layer (ToR) endpoints, which is the
    only configuration the paper uses.
    """

    explicit_endpoints: Optional[Sequence[str]] = None
    shortest_only: bool = True
    description: str = "shortest up-down paths"

    def endpoints(self, topo: Topology) -> List[str]:
        if self.explicit_endpoints is not None:
            return list(self.explicit_endpoints)
        return sorted(topo.switches_at_layer(0))

    def pair_paths(self, topo: Topology, src: str, dst: str) -> Tuple[Path, ...]:
        try:
            return tuple(
                updown_paths(topo, src, dst, shortest_only=self.shortest_only)
            )
        except RoutingError:
            return ()


@dataclass
class ShortestPathElpProvider(PairwiseElpProvider):
    """Per-pair view of :func:`shortest_path_elp` (Jellyfish default).

    Reproduces :func:`repro.routing.shortest.pairwise_shortest_paths`
    pair by pair: with ``per_pair == 1`` the deterministic greedy
    downhill walk, otherwise the first ``per_pair`` ECMP alternatives in
    DFS order.
    """

    explicit_endpoints: Optional[Sequence[str]] = None
    per_pair: int = 1
    description: str = "pairwise shortest paths"

    def endpoints(self, topo: Topology) -> List[str]:
        if self.explicit_endpoints is not None:
            return list(self.explicit_endpoints)
        return sorted(topo.switches)

    def ordered_pairs(self, topo: Topology) -> List[Tuple[str, str]]:
        # pairwise_shortest_paths iterates destinations in the outer
        # loop; mirror it so build() preserves the exact path order.
        names = self.endpoints(topo)
        return [(s, d) for d in names for s in names if s != d]

    def pair_paths(self, topo: Topology, src: str, dst: str) -> Tuple[Path, ...]:
        dist = bfs_distances(topo, dst)
        if src not in dist:
            return ()
        if self.per_pair == 1:
            node = src
            path = [src]
            while node != dst:
                node = min(
                    peer
                    for peer in topo.neighbors(node)
                    if dist.get(peer, float("inf")) == dist[node] - 1
                )
                path.append(node)
            return (tuple(path),)
        try:
            return tuple(
                all_shortest_paths(topo, src, dst, limit=self.per_pair)
            )
        except RoutingError:
            return ()


def bcube_elp(topo: Topology, n: int, k: int) -> ElpSet:
    """ELP = BCube default (digit-correcting) routes between all servers."""
    elp = ElpSet(topo, description=f"BCube({n},{k}) default routes")
    servers = bcube_servers(topo)
    for src in servers:
        for dst in servers:
            if src != dst:
                elp.add(bcube_default_route(topo, n, k, src, dst))
    return elp
