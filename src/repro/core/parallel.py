"""Seeded multiprocessing fan-out for per-tag acyclicity checks.

Requirement R1 (Theorem 5.1) is checked per tag class, and the classes
are independent: tag ``k``'s subgraph shares no edges with tag ``k+1``.
At hyperscale (a 1024-ToR fat-tree plan carries hundreds of thousands
of intra-tag edges) the per-tag DFS sweeps are the verify stage's whole
cost, so :func:`find_first_tag_cycle` can fan them out across a seeded
``multiprocessing`` pool.

Determinism contract (pinned by ``tests/unit/test_parallel_verify.py``):

- the returned *verdict* — which tag, if any, contains a cycle — is a
  pure function of the graph, identical at every worker count and seed;
- the ``seed`` shuffles only the dispatch order of the per-tag work
  items (load balancing), which cannot change any per-tag result;
- workers are forked, so the witness cycle a violating tag reports is
  computed under the parent's hash environment. Plans are acyclic, so
  plan bytes never depend on a witness; on *violating* graphs the
  witness composition (not the tag) may differ from the serial scan.

On platforms without the ``fork`` start method the fan-out silently
degrades to the serial scan — same verdicts, no subprocess cost.
"""

from __future__ import annotations

import multiprocessing
import random
from typing import List, Optional, Tuple

from repro.core.tags import TaggedGraph, TEdge, TNode

#: One per-tag work item: (tag, sorted nodes, sorted intra-tag edges).
_TagWork = Tuple[int, List[TNode], List[TEdge]]


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _probe_tag(work: _TagWork) -> Tuple[int, Optional[List[TNode]]]:
    """Rebuild one tag's subgraph in the worker and scan it for a cycle."""
    tag, nodes, edges = work
    subgraph = TaggedGraph()
    for node in nodes:
        subgraph.add_node(node)
    for src, dst in edges:
        subgraph.add_edge(src, dst)
    return tag, subgraph.find_tag_cycle(tag)


def find_first_tag_cycle(
    graph: TaggedGraph, workers: int = 1, seed: int = 0
) -> Optional[List[TNode]]:
    """Cycle witness from the lowest tag violating R1, or ``None``.

    With ``workers <= 1`` this is exactly the serial ascending-tag scan
    the verifier has always run. With more workers the per-tag checks
    run in a forked pool; the reduction keeps the lowest violating tag,
    so the verdict is independent of scheduling.
    """
    tags = graph.tags()
    context = _fork_context() if workers > 1 else None
    if context is None or workers <= 1 or len(tags) <= 1:
        for tag in tags:
            cycle = graph.find_tag_cycle(tag)
            if cycle is not None:
                return cycle
        return None

    work: List[_TagWork] = [
        (
            tag,
            sorted(graph.nodes_with_tag(tag)),
            sorted(graph.tag_subgraph_edges(tag)),
        )
        for tag in tags
    ]
    random.Random(seed).shuffle(work)
    chunksize = max(1, len(work) // (workers * 2))
    with context.Pool(processes=workers) as pool:
        results = pool.map(_probe_tag, work, chunksize=chunksize)
    cycles = {tag: cycle for tag, cycle in results if cycle is not None}
    if not cycles:
        return None
    return cycles[min(cycles)]
