"""Tagged graph ``G(V, E)`` — the formal object at the heart of Tagger.

Following the paper's §5 formalization (Table 2):

- A node ``(Ai, x)`` says "switch A's ingress port *i* may receive lossless
  packets carrying tag *x*". We represent the port as a
  ``PortKey = (switch_name, ingress_port)`` tuple and the node as
  ``TNode = (PortKey, tag)``.
- An edge ``(Ai, x) -> (Bj, y)`` says switch A may forward a packet that
  arrived on port *i* with tag *x* to neighbor B (arriving on B's port
  *j*), rewriting the tag to *y* (``x == y`` allowed).

Tags are positive integers starting at :data:`INITIAL_TAG`. The special
:data:`LOSSY_TAG` (0) marks demoted packets; it never appears in a tagged
graph — packets leave the graph when demoted.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import TaggingError
from repro.topology.base import Topology

PortKey = Tuple[str, int]
TNode = Tuple[PortKey, int]
TEdge = Tuple[TNode, TNode]

#: Tag carried by packets entering the network.
INITIAL_TAG = 1

#: Sentinel tag for packets demoted to the lossy class. Never in a graph.
LOSSY_TAG = 0


def port_key(switch: str, port: int) -> PortKey:
    return (switch, port)


def tnode(switch: str, port: int, tag: int) -> TNode:
    if tag < INITIAL_TAG:
        raise TaggingError(f"tag must be >= {INITIAL_TAG}; got {tag}")
    return ((switch, port), tag)


class TaggedGraph:
    """Mutable tagged graph with per-tag views and structural queries.

    Nodes and edges are plain tuples (hashable, cheap); the class maintains
    forward/backward adjacency and a per-tag node index so the
    deadlock-freedom requirements (R1 per-tag acyclicity, R2 monotone
    transitions) can be checked efficiently.
    """

    def __init__(self) -> None:
        self.nodes: Set[TNode] = set()
        self._out: Dict[TNode, Set[TNode]] = {}
        self._in: Dict[TNode, Set[TNode]] = {}
        self._by_tag: Dict[int, Set[TNode]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: TNode) -> None:
        if node in self.nodes:
            return
        (switch, port), tag = node
        if tag < INITIAL_TAG:
            raise TaggingError(f"invalid tag {tag} in node {node}")
        self.nodes.add(node)
        self._out.setdefault(node, set())
        self._in.setdefault(node, set())
        self._by_tag.setdefault(tag, set()).add(node)

    def add_edge(self, src: TNode, dst: TNode) -> None:
        """Add an edge, creating endpoints as needed.

        Rejects tag-decreasing edges outright — they could never belong to
        a valid tagging scheme (requirement R2).
        """
        if dst[1] < src[1]:
            raise TaggingError(
                f"tag-decreasing edge {src} -> {dst} violates monotonicity"
            )
        self.add_node(src)
        self.add_node(dst)
        self._out[src].add(dst)
        self._in[dst].add(src)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def successors(self, node: TNode) -> Set[TNode]:
        return set(self._out.get(node, ()))

    def predecessors(self, node: TNode) -> Set[TNode]:
        return set(self._in.get(node, ()))

    def has_node(self, node: TNode) -> bool:
        return node in self.nodes

    def has_edge(self, src: TNode, dst: TNode) -> bool:
        return dst in self._out.get(src, ())

    def edges(self) -> Iterator[TEdge]:
        for src in self._out:
            for dst in self._out[src]:
                yield (src, dst)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(dsts) for dsts in self._out.values())

    def tags(self) -> List[int]:
        """Sorted list of tags present in the graph."""
        return sorted(tag for tag, nodes in self._by_tag.items() if nodes)

    @property
    def num_tags(self) -> int:
        return len(self.tags())

    @property
    def max_tag(self) -> int:
        present = self.tags()
        if not present:
            raise TaggingError("empty tagged graph has no max tag")
        return present[-1]

    def nodes_with_tag(self, tag: int) -> Set[TNode]:
        return set(self._by_tag.get(tag, ()))

    def tag_subgraph_edges(self, tag: int) -> List[TEdge]:
        """Edges of ``G_k``: both endpoints carry ``tag``."""
        members = self._by_tag.get(tag, set())
        result = []
        for src in members:
            for dst in self._out.get(src, ()):
                if dst[1] == tag:
                    result.append((src, dst))
        return result

    def ports(self) -> Set[PortKey]:
        """Distinct ingress ports appearing in the graph."""
        return {node[0] for node in self.nodes}

    def tags_on_port(self, port: PortKey) -> List[int]:
        return sorted(tag for (p, tag) in self.nodes if p == port)

    # ------------------------------------------------------------------
    # Structure checks (used by verification and by Algorithm 2's sandbox)
    # ------------------------------------------------------------------
    def tag_subgraph_is_acyclic(self, tag: int) -> bool:
        """True iff ``G_k`` (the same-tag subgraph) has no directed cycle."""
        return self.find_tag_cycle(tag) is None

    def find_tag_cycle(self, tag: int) -> Optional[List[TNode]]:
        """Return one directed cycle within ``G_k``, or None.

        Iterative three-color DFS restricted to nodes/edges of ``tag``.
        """
        members = self._by_tag.get(tag, set())
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in members}
        parent: Dict[TNode, Optional[TNode]] = {}

        for root in members:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[TNode, Iterator[TNode]]] = []
            color[root] = GRAY
            parent[root] = None
            stack.append((root, iter(sorted(self._out.get(root, ()), key=repr))))
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ[1] != tag or succ not in color:
                        continue
                    if color[succ] == WHITE:
                        color[succ] = GRAY
                        parent[succ] = node
                        stack.append(
                            (succ, iter(sorted(self._out.get(succ, ()), key=repr)))
                        )
                        advanced = True
                        break
                    if color[succ] == GRAY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [succ]
                        walk = node
                        while walk != succ:
                            cycle.append(walk)
                            walk = parent[walk]
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    # ------------------------------------------------------------------
    # Export / comparison
    # ------------------------------------------------------------------
    def to_networkx(self) -> Any:
        """Export to a :class:`networkx.DiGraph` (nodes are TNode tuples)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.edges())
        return graph

    def copy(self) -> "TaggedGraph":
        clone = TaggedGraph()
        for node in self.nodes:
            clone.add_node(node)
        for src, dst in self.edges():
            clone.add_edge(src, dst)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaggedGraph):
            return NotImplemented
        return self.nodes == other.nodes and set(self.edges()) == set(other.edges())

    def __repr__(self) -> str:
        return (
            f"TaggedGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"tags={self.tags()})"
        )


def ingress_hops(topo: Topology, path: Sequence[str]) -> List[PortKey]:
    """Per-hop ingress ``PortKey`` sequence for a path.

    For every consecutive pair ``(prev, cur)`` where ``cur`` is a switch,
    yields ``(cur, port on cur facing prev)``. Host endpoints therefore
    contribute the host-facing ports of their edge switches, and a path
    that *starts* at a switch contributes nothing for that first switch
    (a freshly injected packet occupies no ingress buffer there).
    """
    result: List[PortKey] = []
    for i in range(len(path) - 1):
        prev, cur = path[i], path[i + 1]
        if topo.node(cur).is_switch:
            result.append((cur, topo.port_to(cur, prev)))
    return result


def transit_triples(
    topo: Topology, path: Sequence[str]
) -> List[Tuple[str, int, int]]:
    """``(switch, in_port, out_port)`` for every transit switch on a path.

    The final switch is included when the path terminates at a host (its
    out_port faces the host); a path ending at a switch has no egress
    there, so that switch is excluded.
    """
    triples = []
    for i in range(1, len(path) - 1):
        prev, cur, nxt = path[i - 1], path[i], path[i + 1]
        if not topo.node(cur).is_switch:
            continue
        triples.append(
            (cur, topo.port_to(cur, prev), topo.port_to(cur, nxt))
        )
    return triples
