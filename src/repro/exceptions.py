"""Exception hierarchy for the Tagger reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """Malformed topology: unknown node, duplicate link, bad parameters."""


class RoutingError(ReproError):
    """Route computation failed: no path, disconnected graph, bad endpoints."""


class TaggingError(ReproError):
    """Tagged-graph construction or validation failed."""


class VerificationError(TaggingError):
    """A tagging scheme violates one of the deadlock-freedom requirements.

    Raised by :func:`repro.core.verification.verify_tagged_graph` when either
    requirement R1 (per-tag acyclicity) or R2 (monotonic tag transitions) of
    Theorem 5.1 fails.
    """


class RuleError(ReproError):
    """Match-action rule generation or compression failed."""


class LintError(ReproError):
    """The deployment linter was given an artifact it cannot analyze."""


class DeploymentError(ReproError):
    """The rollout orchestrator refused or could not complete a rollout."""


class SimulationError(ReproError):
    """The discrete-event simulator was configured or driven incorrectly."""


class CapacityError(SimulationError):
    """A switch was configured with more lossless queues than it supports."""
