"""Machine-readable performance baselines (``BENCH_pipeline.json``).

The baseline file is a flat registry of named benchmark entries, each
carrying per-stage wall-clock seconds plus free-form counters (path
counts, tag counts, speedup ratios). Benchmarks under ``benchmarks/``
record entries after each run; a future CI perf gate (or a reviewer)
compares a fresh run against the committed file with
:func:`compare_stages`.

Schema (``docs/PERFORMANCE.md`` documents it in full)::

    {
      "schema": "repro-tagger-bench/1",
      "entries": {
        "<entry name>": {
          "stages": {"<stage>": <seconds>, ...},
          "total_seconds": <float>,
          "meta": {...free-form JSON...}
        }
      }
    }

Timestamps are intentionally *not* recorded: the file is committed, and
content-free churn on every benchmark run would poison diffs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

BASELINE_SCHEMA = "repro-tagger-bench/1"

#: Default location, relative to the repository root.
DEFAULT_BASELINE_NAME = "BENCH_pipeline.json"


@dataclass
class BaselineEntry:
    """One benchmark's recorded stage timings."""

    name: str
    stages: Dict[str, float]
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.stages.values())

    def to_json(self) -> Dict[str, Any]:
        return {
            "stages": {k: round(v, 6) for k, v in self.stages.items()},
            "total_seconds": round(self.total_seconds, 6),
            "meta": self.meta,
        }

    @staticmethod
    def from_json(name: str, blob: Dict[str, Any]) -> "BaselineEntry":
        stages = {
            str(k): float(v) for k, v in dict(blob.get("stages", {})).items()
        }
        meta = dict(blob.get("meta", {}))
        return BaselineEntry(name=name, stages=stages, meta=meta)


def load_baselines(path: Union[str, Path]) -> Dict[str, BaselineEntry]:
    """Load all entries from a baseline file; empty dict if absent."""
    file_path = Path(path)
    if not file_path.exists():
        return {}
    blob = json.loads(file_path.read_text(encoding="utf-8"))
    if blob.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{file_path}: unknown baseline schema {blob.get('schema')!r}; "
            f"expected {BASELINE_SCHEMA!r}"
        )
    entries = blob.get("entries", {})
    return {
        name: BaselineEntry.from_json(name, entry)
        for name, entry in entries.items()
    }


def record_baseline(path: Union[str, Path], entry: BaselineEntry) -> None:
    """Insert/replace ``entry`` in the baseline file (merge semantics).

    Other entries are preserved, keys are emitted sorted, and the file is
    valid even when created from scratch — so independent benchmarks can
    each record their own entry without clobbering the rest.
    """
    file_path = Path(path)
    entries = load_baselines(file_path)
    entries[entry.name] = entry
    blob = {
        "schema": BASELINE_SCHEMA,
        "entries": {
            name: entries[name].to_json() for name in sorted(entries)
        },
    }
    file_path.write_text(
        json.dumps(blob, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def compare_stages(
    baseline: BaselineEntry,
    fresh: BaselineEntry,
    tolerance: float = 1.5,
) -> List[str]:
    """Regression report: stages slower than ``tolerance``x the baseline.

    Returns human-readable complaint strings (empty = no regression).
    Stages absent from either side are skipped — adding a new stage is
    not a regression, and micro-stages under 1 ms are ignored as noise.
    """
    complaints: List[str] = []
    for stage, base_secs in baseline.stages.items():
        if base_secs < 1e-3:
            continue
        fresh_secs = fresh.stages.get(stage)
        if fresh_secs is None:
            continue
        if fresh_secs > base_secs * tolerance:
            complaints.append(
                f"{baseline.name}/{stage}: {fresh_secs:.3f}s vs baseline "
                f"{base_secs:.3f}s (> {tolerance:.1f}x)"
            )
    return complaints
