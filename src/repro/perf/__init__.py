"""Performance instrumentation: stage timers and persisted baselines.

The ROADMAP's north star is a pipeline that runs "as fast as the
hardware allows" — which is unfalsifiable without numbers. This package
provides the two primitives that make speed claims checkable:

- :class:`~repro.perf.timing.StageTimer` — wall-clock accounting per
  pipeline stage (ELP enumeration, brute-force tagging, minimization,
  rule compilation, ...), used by :class:`repro.core.planner.TaggerPlan`
  and the incremental re-planner;
- :mod:`~repro.perf.baseline` — a machine-readable baseline store
  (``BENCH_pipeline.json``) that benchmarks write and CI / future PRs
  read to track the performance trajectory.

See ``docs/PERFORMANCE.md`` for the baseline schema and workflow.
"""

from repro.perf.baseline import (
    BASELINE_SCHEMA,
    BaselineEntry,
    compare_stages,
    load_baselines,
    record_baseline,
)
from repro.perf.timing import StageTimer

__all__ = [
    "BASELINE_SCHEMA",
    "BaselineEntry",
    "StageTimer",
    "compare_stages",
    "load_baselines",
    "record_baseline",
]
