"""Wall-clock stage timing for the planning pipeline.

A :class:`StageTimer` accumulates elapsed seconds per named stage in
insertion order. It is deliberately tiny — a context manager around
``time.perf_counter`` — so the planner and re-planner can thread one
through without depending on any benchmark framework.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class StageTimer:
    """Accumulates wall-clock seconds per pipeline stage.

    >>> timer = StageTimer()
    >>> with timer.stage("elp"):
    ...     pass
    >>> "elp" in timer.timings()
    True

    Re-entering a stage name accumulates into the same bucket, so a
    stage executed in a loop reports its total cost.
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block of code, accumulating into stage ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Manually account ``seconds`` to stage ``name``."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def timings(self) -> Dict[str, float]:
        """Per-stage seconds, in first-recorded order."""
        return dict(self._seconds)

    @property
    def total(self) -> float:
        return sum(self._seconds.values())

    def __contains__(self, name: object) -> bool:
        return name in self._seconds

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={secs * 1000.0:.1f}ms"
            for name, secs in self._seconds.items()
        )
        return f"StageTimer({parts})"
