"""S-family checks: first-match order semantics of compressed programs.

A TCAM program is an *ordered* entry list; hardware fires the first
matching entry. The compressor emits non-overlapping entries, so any
order works — but the linter cannot assume it is looking at compressor
output. It therefore checks the program as the hardware would read it:

- **S101** an entry fully covered by a single earlier entry never fires
  (error when the earlier rewrite differs — semantics changed — else a
  redundancy warning);
- **S102** partial overlap with a different rewrite: legal, but the
  entry order silently decides the winner;
- **S103** an entry covered only by the *union* of earlier entries;
- **S104** first-match evaluation must reproduce the exact-match
  reference rules (plus the implicit demote-by-default);
- **S105** the final entry must be a catch-all wildcard demote — the
  paper's safeguard rule, "always the last one in the TCAM rule list".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.compression import TcamEntry, first_match
from repro.core.rules import RuleTable
from repro.core.tags import LOSSY_TAG
from repro.lint.diagnostics import Diagnostic, Severity, make_diagnostic


def _tags_overlap(a: Optional[int], b: Optional[int]) -> bool:
    return a is None or b is None or a == b


def _covers(earlier: TcamEntry, later: TcamEntry) -> bool:
    """Does ``earlier`` match every key ``later`` matches?"""
    tag_covers = earlier.tag is None or earlier.tag == later.tag
    return (
        tag_covers
        and later.in_ports <= earlier.in_ports
        and later.out_ports <= earlier.out_ports
    )


def _overlaps(a: TcamEntry, b: TcamEntry) -> bool:
    return (
        _tags_overlap(a.tag, b.tag)
        and bool(a.in_ports & b.in_ports)
        and bool(a.out_ports & b.out_ports)
    )


def _entry_location(index: int, entry: TcamEntry) -> str:
    tag = "*" if entry.tag is None else str(entry.tag)
    return (
        f"entry#{index}(tag={tag},in={sorted(entry.in_ports)},"
        f"out={sorted(entry.out_ports)})->{entry.new_tag}"
    )


def _check_order(
    switch: str, program: Sequence[TcamEntry], diagnostics: List[Diagnostic]
) -> None:
    """S101/S102/S103 on one ordered program."""
    for j, later in enumerate(program):
        single_cover = False
        for i in range(j):
            earlier = program[i]
            if _covers(earlier, later):
                severity = (
                    Severity.ERROR
                    if earlier.new_tag != later.new_tag
                    else Severity.WARNING
                )
                consequence = (
                    f"its keys rewrite to {earlier.new_tag} instead of "
                    f"{later.new_tag}"
                    if earlier.new_tag != later.new_tag
                    else "it is redundant"
                )
                diagnostics.append(
                    make_diagnostic(
                        "S101",
                        f"shadowed by {_entry_location(i, earlier)}; the "
                        f"entry can never fire and {consequence}",
                        switch=switch,
                        location=_entry_location(j, later),
                        severity=severity,
                    )
                )
                single_cover = True
                break
            if later.tag is None and later.new_tag == LOSSY_TAG:
                # A trailing catch-all demote is *supposed* to overlap
                # every explicit entry; that is its job.
                continue
            if _overlaps(earlier, later) and earlier.new_tag != later.new_tag:
                diagnostics.append(
                    make_diagnostic(
                        "S102",
                        f"partially overlaps {_entry_location(i, earlier)} "
                        "with a different rewrite; first-match order "
                        "decides the overlap",
                        switch=switch,
                        location=_entry_location(j, later),
                    )
                )
        if not single_cover and _union_covered(program, j):
            diagnostics.append(
                make_diagnostic(
                    "S103",
                    "covered by the union of earlier entries (no single "
                    "shadow); the entry can never fire",
                    switch=switch,
                    location=_entry_location(j, program[j]),
                )
            )


def _union_covered(program: Sequence[TcamEntry], j: int) -> bool:
    """Is ``program[j]`` unreachable behind the union of entries 0..j-1?

    Wildcard-tag entries match an unbounded tag space, so they can only
    be union-covered by earlier wildcard entries (exact-tag coverage is
    never exhaustive over all tags).
    """
    later = program[j]
    if later.tag is None:
        earlier_wild = [e for e in program[:j] if e.tag is None]
        return _ports_union_covered(later, earlier_wild)
    relevant = [e for e in program[:j] if _tags_overlap(e.tag, later.tag)]
    return _ports_union_covered(later, relevant)


def _ports_union_covered(
    later: TcamEntry, earlier: Sequence[TcamEntry]
) -> bool:
    if not earlier:
        return False
    for in_port in later.in_ports:
        for out_port in later.out_ports:
            if not any(
                in_port in e.in_ports and out_port in e.out_ports
                for e in earlier
            ):
                return False
    return True


def _check_roundtrip(
    switch: str,
    table: RuleTable,
    program: Sequence[TcamEntry],
    diagnostics: List[Diagnostic],
) -> None:
    """S104: first-match semantics == exact rules + implicit safeguard."""
    reference = table.rules
    mismatches = 0
    first_example: Optional[str] = None

    def observe(key: Tuple[int, int, int], got: Optional[int]) -> None:
        nonlocal mismatches, first_example
        expected = reference.get(key, LOSSY_TAG)
        effective = LOSSY_TAG if got is None else got
        if effective != expected:
            mismatches += 1
            if first_example is None:
                first_example = (
                    f"key {key}: program gives "
                    f"{'no match' if got is None else got}, "
                    f"reference rules give {expected}"
                )

    checked: Set[Tuple[int, int, int]] = set()
    for key in reference:
        checked.add(key)
        observe(key, first_match(program, *key))
    for entry in program:
        if entry.tag is None:
            if entry.new_tag != LOSSY_TAG:
                diagnostics.append(
                    make_diagnostic(
                        "S104",
                        "wildcard-tag entry with a lossless rewrite "
                        f"(-> {entry.new_tag}) promotes unmatched packets; "
                        "the reference semantics demote them",
                        switch=switch,
                        location=_entry_location(
                            list(program).index(entry), entry
                        ),
                    )
                )
            continue
        for in_port in entry.in_ports:
            for out_port in entry.out_ports:
                key = (entry.tag, in_port, out_port)
                if key not in checked:
                    checked.add(key)
                    observe(key, first_match(program, *key))
    if mismatches:
        diagnostics.append(
            make_diagnostic(
                "S104",
                f"{mismatches} match key(s) diverge from the exact-rule "
                f"reference, e.g. {first_example}",
                switch=switch,
            )
        )


def _check_safeguard(
    switch: str,
    program: Sequence[TcamEntry],
    ports: Set[int],
    diagnostics: List[Diagnostic],
) -> None:
    """S105: the last entry must be a catch-all demote over all ports."""
    if not program:
        diagnostics.append(
            make_diagnostic(
                "S105",
                "empty TCAM program: no safeguard default installed",
                switch=switch,
            )
        )
        return
    last = program[-1]
    if (
        last.tag is not None
        or last.new_tag != LOSSY_TAG
        or not ports <= last.in_ports
        or not ports <= last.out_ports
    ):
        diagnostics.append(
            make_diagnostic(
                "S105",
                "final entry is not a catch-all lossy demote over every "
                "port; unmatched packets keep an undefined tag",
                switch=switch,
                location=_entry_location(len(program) - 1, last),
            )
        )


def check_tcam(
    topo_ports: Dict[str, Set[int]],
    tables: Dict[str, RuleTable],
    programs: Dict[str, List[TcamEntry]],
) -> Tuple[List[Diagnostic], Dict[str, int]]:
    """Run the S-family checks on every switch's ordered program."""
    diagnostics: List[Diagnostic] = []
    total_entries = 0
    for switch in sorted(programs):
        program = programs[switch]
        total_entries += len(program)
        _check_order(switch, program, diagnostics)
        table = tables.get(switch, RuleTable(switch=switch))
        _check_roundtrip(switch, table, program, diagnostics)
        _check_safeguard(
            switch, program, topo_ports.get(switch, set()), diagnostics
        )
    return diagnostics, {"tcam_entries": total_entries}
