"""The deployment linter: static certification of compiled rule tables.

:func:`lint_artifact` is the entry point. It consumes a
:class:`~repro.lint.artifact.DeploymentArtifact` — rule tables, ordered
TCAM programs, queue map, topology — and re-derives every safety and
hygiene property from those artifacts alone, without trusting the
planner that produced them:

1. **T-family** (:mod:`repro.lint.graph_checks`) reconstructs the
   effective tagged graph and certifies Theorem 5.1's R1 + R2;
2. **S-family** (:mod:`repro.lint.tcam_checks`) checks first-match TCAM
   order semantics and round-trip equivalence;
3. **R-family** (:mod:`repro.lint.reach_checks`) explores reachable
   packet states to find dead rules, unreachable tags, and lossy dead
   ends;
4. **B-family** (:mod:`repro.lint.budget_checks`) enforces TCAM budgets
   and queue-fit consistency.

A report with zero error-severity findings is a certificate that the
deployed configuration is deadlock-free and faithful to its own
compressed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.pipeline import QueueMap
from repro.core.rules import RuleTable
from repro.lint.artifact import DeploymentArtifact, TaggerPlanLike
from repro.lint.budget_checks import check_budget, check_queue_fit
from repro.lint.diagnostics import LintReport
from repro.lint.graph_checks import check_graph
from repro.lint.reach_checks import check_reachability
from repro.lint.tcam_checks import check_tcam
from repro.topology.base import Topology


@dataclass(frozen=True)
class LintConfig:
    """Knobs for one lint run (all checks on by default)."""

    tcam_budget: Optional[int] = None
    check_tcam: bool = True
    check_reach: bool = True


def lint_artifact(
    artifact: DeploymentArtifact, config: Optional[LintConfig] = None
) -> LintReport:
    """Run every check family over a deployment artifact."""
    config = config or LintConfig()
    report = LintReport()
    topo = artifact.topo
    tables = artifact.tables
    report.stats["switches"] = len(tables)
    report.stats["rules"] = sum(len(t.rules) for t in tables.values())

    graph_diags, graph_stats = check_graph(topo, tables)
    report.extend(graph_diags)
    report.stats.update(graph_stats)

    if config.check_tcam:
        programs = artifact.ensure_programs()
        ports: Dict[str, Set[int]] = {
            switch: set(topo.ports(switch).keys())
            for switch in programs
            if switch in topo.nodes
        }
        tcam_diags, tcam_stats = check_tcam(ports, tables, programs)
        report.extend(tcam_diags)
        report.stats.update(tcam_stats)
        budget = (
            config.tcam_budget
            if config.tcam_budget is not None
            else artifact.tcam_budget
        )
        report.extend(check_budget(programs, budget))

    if config.check_reach:
        reach_diags, reach_stats, live_tags = check_reachability(
            topo, tables, artifact.queue_map
        )
        report.extend(reach_diags)
        report.stats.update(reach_stats)
        report.extend(check_queue_fit(live_tags, artifact.queue_map))

    return report


def lint_tables(
    topo: Topology,
    tables: Dict[str, RuleTable],
    queue_map: Optional[QueueMap] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Convenience wrapper: lint bare rule tables."""
    artifact = DeploymentArtifact(
        topo=topo, tables=tables, queue_map=queue_map
    )
    return lint_artifact(artifact, config)


def lint_plan(
    plan: TaggerPlanLike,
    tcam_budget: Optional[int] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint the deployable artifact of a planner result.

    Only the plan's *artifacts* (tables, queue map, topology) are read;
    its tagged graph is deliberately ignored.
    """
    artifact = DeploymentArtifact.from_plan(plan, tcam_budget=tcam_budget)
    return lint_artifact(artifact, config)
