"""Diagnostic model for the deployment linter.

Every finding carries a stable code (``T001``, ``S101``, ...), a
severity, and a source location (switch + rule/entry key) so tools and
humans can consume the same report. :data:`CATALOG` is the single source
of truth for the code space — ``docs/LINTING.md`` documents each entry
and the test suite asserts the two never drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a finding is; ``ERROR`` fails CI."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class CodeInfo:
    """Catalog entry for one diagnostic code."""

    code: str
    title: str
    default_severity: Severity
    summary: str


#: The complete diagnostic code space. Codes are grouped by family:
#: ``T`` tagged-graph safety, ``S`` TCAM order semantics, ``R``
#: reachability, ``B`` budgets and queue fit.
CATALOG: Dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo(
            "T001",
            "cycle-in-tag-subgraph",
            Severity.ERROR,
            "A same-tag subgraph of the effective tagged graph contains a "
            "directed cycle (requirement R1 of Theorem 5.1 fails).",
        ),
        CodeInfo(
            "T002",
            "tag-decreasing-rule",
            Severity.ERROR,
            "A rule rewrites a packet to a smaller lossless tag "
            "(requirement R2, tag monotonicity, fails).",
        ),
        CodeInfo(
            "T003",
            "invalid-tag",
            Severity.ERROR,
            "A rule matches or produces a tag outside the valid range "
            "(negative, or matching the lossy sentinel).",
        ),
        CodeInfo(
            "T004",
            "unknown-port",
            Severity.ERROR,
            "A rule references a switch or port number that does not "
            "exist in the topology.",
        ),
        CodeInfo(
            "S101",
            "shadowed-entry",
            Severity.ERROR,
            "A TCAM entry is fully covered by a single earlier entry and "
            "can never fire; error when the earlier entry rewrites "
            "differently, warning when it is merely redundant.",
        ),
        CodeInfo(
            "S102",
            "conflicting-overlap",
            Severity.WARNING,
            "Two TCAM entries partially overlap with different rewrites; "
            "first-match order silently decides the winner.",
        ),
        CodeInfo(
            "S103",
            "unreachable-entry",
            Severity.WARNING,
            "A TCAM entry is covered by the union of earlier entries "
            "(though by no single one) and can never fire.",
        ),
        CodeInfo(
            "S104",
            "roundtrip-mismatch",
            Severity.ERROR,
            "The ordered TCAM program's first-match semantics disagree "
            "with the switch's exact-match reference rules.",
        ),
        CodeInfo(
            "S105",
            "missing-safeguard",
            Severity.ERROR,
            "The TCAM program does not end with a catch-all entry that "
            "demotes unmatched packets to the lossy class.",
        ),
        CodeInfo(
            "R201",
            "dead-rule",
            Severity.WARNING,
            "A rule's (tag, ingress-port) state is unreachable from every "
            "host injection point; the rule can never fire.",
        ),
        CodeInfo(
            "R202",
            "unreachable-tag",
            Severity.INFO,
            "A tag mentioned by the rules or the queue map is never "
            "carried by any reachable packet state.",
        ),
        CodeInfo(
            "R203",
            "lossy-dead-end",
            Severity.WARNING,
            "A reachable packet state has no lossless continuation and no "
            "local host delivery: packets there can only proceed via "
            "lossy demotion.",
        ),
        CodeInfo(
            "B301",
            "tcam-budget-exceeded",
            Severity.ERROR,
            "A switch's compressed TCAM program exceeds the per-switch "
            "entry budget.",
        ),
        CodeInfo(
            "B302",
            "queue-unfit",
            Severity.ERROR,
            "A live lossless tag is not mapped to a lossless priority "
            "queue; its packets would silently become droppable.",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding with a stable code and a source location.

    ``switch`` is ``None`` for fabric-wide findings; ``location`` is a
    human-readable anchor (a rule key, a TCAM entry index, a tag...).
    """

    code: str
    severity: Severity
    message: str
    switch: Optional[str] = None
    location: Optional[str] = None

    @property
    def title(self) -> str:
        return CATALOG[self.code].title

    def render(self) -> str:
        where = ""
        if self.switch is not None and self.location is not None:
            where = f" [{self.switch} @ {self.location}]"
        elif self.switch is not None:
            where = f" [{self.switch}]"
        elif self.location is not None:
            where = f" [{self.location}]"
        return f"{self.severity}: {self.code} {self.title}{where}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "title": self.title,
            "severity": str(self.severity),
            "switch": self.switch,
            "location": self.location,
            "message": self.message,
        }


def make_diagnostic(
    code: str,
    message: str,
    switch: Optional[str] = None,
    location: Optional[str] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a diagnostic, defaulting severity from the catalog."""
    info = CATALOG[code]
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else info.default_severity,
        message=message,
        switch=switch,
        location=location,
    )


@dataclass
class LintReport:
    """Machine- and human-readable outcome of one lint run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Clean for CI purposes: no error-severity findings."""
        return not self.errors

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.code] = counts.get(diag.code, 0) + 1
        return dict(sorted(counts.items()))

    def codes(self) -> Tuple[str, ...]:
        return tuple(sorted({d.code for d in self.diagnostics}))

    def extend(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def summary(self) -> str:
        verdict = "CLEAN" if self.ok else "DIRTY"
        per_code = ", ".join(
            f"{code}x{count}" for code, count in self.by_code().items()
        )
        return (
            f"{verdict}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)} "
            f"info" + (f" [{per_code}]" if per_code else "")
        )

    def render_text(self) -> str:
        lines = [diag.render() for diag in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.diagnostics)
                - len(self.errors)
                - len(self.warnings),
                "by_code": self.by_code(),
            },
            "stats": dict(sorted(self.stats.items())),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
