"""B-family checks: hardware budgets and queue-fit consistency.

- **B301** per-switch TCAM entry budget: the compressed program that
  actually ships must fit the ASIC's table (paper §7 reports entry
  counts precisely because this is the deployment bottleneck);
- **B302** queue fit: every *live* lossless tag (see
  :mod:`repro.lint.reach_checks`) must map to a lossless priority
  queue — a live tag landing in the lossy queue silently revokes the
  no-drop guarantee for every packet carrying it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.compression import TcamEntry
from repro.core.pipeline import QueueMap
from repro.lint.diagnostics import Diagnostic, make_diagnostic


def check_budget(
    programs: Dict[str, List[TcamEntry]],
    tcam_budget: Optional[int],
) -> List[Diagnostic]:
    """B301 on every switch's program; no-op when no budget is set."""
    diagnostics: List[Diagnostic] = []
    if tcam_budget is None:
        return diagnostics
    for switch in sorted(programs):
        used = len(programs[switch])
        if used > tcam_budget:
            diagnostics.append(
                make_diagnostic(
                    "B301",
                    f"{used} TCAM entries exceed the per-switch budget of "
                    f"{tcam_budget}",
                    switch=switch,
                    location=f"{used}/{tcam_budget} entries",
                )
            )
    return diagnostics


def check_queue_fit(
    live_tags: Set[int], queue_map: Optional[QueueMap]
) -> List[Diagnostic]:
    """B302: every live lossless tag maps to a lossless priority."""
    diagnostics: List[Diagnostic] = []
    if queue_map is None:
        return diagnostics
    for tag in sorted(live_tags):
        if not queue_map.is_lossless(tag):
            diagnostics.append(
                make_diagnostic(
                    "B302",
                    f"live tag {tag} maps to the lossy queue; packets "
                    "carrying it lose the no-drop guarantee mid-path",
                    location=f"tag {tag}",
                )
            )
    return diagnostics
