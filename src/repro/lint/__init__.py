"""Deployment linter: static certification of compiled Tagger artifacts.

The analyses here run on what actually ships to switches — per-switch
``(tag, in_port, out_port) -> new_tag`` rule tables, wildcard-compressed
TCAM programs, and tag -> queue maps — and certify deadlock freedom and
deployment hygiene *independently of the planner* that produced them.
See ``docs/LINTING.md`` for the diagnostic code catalog.
"""

from repro.lint.artifact import DeploymentArtifact
from repro.lint.diagnostics import (
    CATALOG,
    CodeInfo,
    Diagnostic,
    LintReport,
    Severity,
    make_diagnostic,
)
from repro.lint.linter import LintConfig, lint_artifact, lint_plan, lint_tables

__all__ = [
    "CATALOG",
    "CodeInfo",
    "DeploymentArtifact",
    "Diagnostic",
    "LintConfig",
    "LintReport",
    "Severity",
    "lint_artifact",
    "lint_plan",
    "lint_tables",
    "make_diagnostic",
]
