"""R-family checks: explore reachable (tag, ingress-port) packet states.

Starting from the host injection points — every host-facing switch port,
with :data:`~repro.core.tags.INITIAL_TAG` — the linter closes over the
deployed rules exactly the way packets would: a rule
``(tag, in_port, out_port) -> new_tag`` moves the state to the far-end
switch's ingress port carrying ``new_tag`` (demotions leave the lossless
world and end exploration). On host-free fabrics (paths between
switches) every switch-facing port doubles as an injection point.

From the reachable set the linter flags:

- **R201** rules whose match state never occurs (dead TCAM space);
- **R202** tags no reachable packet ever carries;
- **R203** reachable states whose every continuation demotes and whose
  switch has no host to deliver to — packets there can only make
  progress by dropping out of the lossless class.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.core.pipeline import QueueMap
from repro.core.rules import RuleTable
from repro.core.tags import INITIAL_TAG, LOSSY_TAG
from repro.exceptions import TopologyError
from repro.lint.diagnostics import Diagnostic, make_diagnostic
from repro.topology.base import Topology

#: A packet state: (switch, ingress port, carried tag).
State = Tuple[str, int, int]


def injection_states(topo: Topology) -> Set[State]:
    """Where fresh lossless packets can enter the fabric.

    Host-facing switch ports with the initial tag; when the topology has
    no hosts at all (switch-to-switch ELPs), every switch port instead.
    """
    states: Set[State] = set()
    has_hosts = bool(topo.hosts)
    for switch in topo.switches:
        for port, peer in topo.ports(switch).items():
            if not has_hosts or topo.node(peer).is_host:
                states.add((switch, port, INITIAL_TAG))
    return states


def explore(
    topo: Topology, tables: Dict[str, RuleTable]
) -> Tuple[Set[State], Set[Tuple[str, int, int, int]], Set[int]]:
    """BFS closure over the rules from the injection points.

    Returns ``(reachable states, fired rule keys as (switch, tag,
    in_port, out_port), live tags)``. Live tags include every tag a
    reachable state carries plus rewrite results applied on delivery
    hops (the packet occupies an egress queue under the new tag even
    when the far end is a host).
    """
    reachable: Set[State] = set()
    fired: Set[Tuple[str, int, int, int]] = set()
    live_tags: Set[int] = set()
    queue = deque(sorted(injection_states(topo)))
    reachable.update(queue)
    while queue:
        switch, in_port, tag = queue.popleft()
        live_tags.add(tag)
        table = tables.get(switch)
        if table is None:
            continue
        for (rule_tag, rule_in, out_port), new_tag in table.rules.items():
            if rule_tag != tag or rule_in != in_port:
                continue
            fired.add((switch, rule_tag, rule_in, out_port))
            if new_tag == LOSSY_TAG:
                continue
            live_tags.add(new_tag)
            try:
                peer = topo.peer_on_port(switch, out_port)
            except TopologyError:  # unknown port: T004's business, not ours
                continue
            if not topo.node(peer).is_switch:
                continue
            state = (peer, topo.port_to(peer, switch), new_tag)
            if state not in reachable:
                reachable.add(state)
                queue.append(state)
    return reachable, fired, live_tags


def check_reachability(
    topo: Topology,
    tables: Dict[str, RuleTable],
    queue_map: Optional[QueueMap] = None,
) -> Tuple[List[Diagnostic], Dict[str, int], Set[int]]:
    """Run the R-family checks; returns (diagnostics, stats, live tags)."""
    diagnostics: List[Diagnostic] = []
    reachable, fired, live_tags = explore(topo, tables)

    # R201 — rules that can never fire.
    dead_rules = 0
    for switch in sorted(tables):
        for key in sorted(tables[switch].rules):
            tag, in_port, out_port = key
            if (switch, tag, in_port, out_port) not in fired:
                dead_rules += 1
                diagnostics.append(
                    make_diagnostic(
                        "R201",
                        f"no packet injected at a host ever arrives on "
                        f"port {in_port} carrying tag {tag}; the rule is "
                        "dead TCAM space",
                        switch=switch,
                        location=f"({tag},{in_port},{out_port})",
                    )
                )

    # R202 — tags nobody can ever carry.
    mentioned: Set[int] = set()
    for table in tables.values():
        for (tag, _, _), new_tag in table.rules.items():
            mentioned.add(tag)
            if new_tag != LOSSY_TAG:
                mentioned.add(new_tag)
    if queue_map is not None:
        mentioned.update(tag for tag, _ in queue_map.mapping)
    for tag in sorted(mentioned - live_tags):
        diagnostics.append(
            make_diagnostic(
                "R202",
                f"tag {tag} appears in the deployment but no reachable "
                "packet state ever carries it",
                location=f"tag {tag}",
            )
        )

    # R203 — lossless dead ends (only meaningful when hosts exist:
    # without hosts the delivery points are unknowable from the rules).
    dead_ends = 0
    if topo.hosts:
        for switch, in_port, tag in sorted(reachable):
            if any(
                topo.node(peer).is_host
                for peer in topo.ports(switch).values()
            ):
                continue  # local delivery is possible
            table = tables.get(switch)
            has_lossless_exit = table is not None and any(
                rule_tag == tag
                and rule_in == in_port
                and new_tag != LOSSY_TAG
                for (rule_tag, rule_in, _), new_tag in table.rules.items()
            )
            if not has_lossless_exit:
                dead_ends += 1
                diagnostics.append(
                    make_diagnostic(
                        "R203",
                        f"packets arriving on port {in_port} with tag "
                        f"{tag} have no lossless continuation and no "
                        "local host; they can only proceed via lossy "
                        "demotion",
                        switch=switch,
                        location=f"({tag},{in_port})",
                    )
                )

    stats = {
        "reachable_states": len(reachable),
        "live_tags": len(live_tags),
        "dead_rules": dead_rules,
        "lossy_dead_ends": dead_ends,
    }
    return diagnostics, stats, live_tags
