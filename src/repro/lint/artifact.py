"""The deployment artifact: exactly what ships to the switches.

The linter deliberately consumes *only* this bundle — per-switch exact
rule tables, optional ordered TCAM programs, the tag -> queue map, and
the topology — and never the planner's :class:`~repro.core.tags.TaggedGraph`.
That independence is the point: the certificate holds for the deployed
configuration even if the planner that produced it is buggy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Protocol

from repro.core.compression import TcamEntry, tcam_program
from repro.core.pipeline import QueueMap
from repro.core.rules import RuleTable
from repro.exceptions import LintError
from repro.topology.base import Topology


@dataclass
class DeploymentArtifact:
    """Everything the linter needs, and nothing the planner knows.

    Attributes:
        topo: The physical topology (wiring and port numbers).
        tables: Per-switch exact-match rewrite rules (the reference
            semantics; the safeguard default is implicit in lookup).
        programs: Optional ordered first-match TCAM programs per switch.
            When absent, :meth:`ensure_programs` compiles them from the
            tables — linting then certifies the compiler's own output.
        queue_map: Tag -> priority queue assignment (``None`` skips the
            queue-fit checks).
        tcam_budget: Per-switch entry budget (``None`` skips B301).
    """

    topo: Topology
    tables: Dict[str, RuleTable]
    programs: Optional[Dict[str, List[TcamEntry]]] = None
    queue_map: Optional[QueueMap] = None
    tcam_budget: Optional[int] = None
    _compiled: Dict[str, List[TcamEntry]] = field(
        default_factory=dict, repr=False, init=False
    )

    def __post_init__(self) -> None:
        for switch, table in self.tables.items():
            if table.policy is not None and not table.rules:
                raise LintError(
                    f"table for {switch!r} is policy-backed with no "
                    "explicit rules; materialize it before linting"
                )

    def ensure_programs(self) -> Dict[str, List[TcamEntry]]:
        """The programs under test: provided ones, else compiled now."""
        if self.programs is not None:
            return self.programs
        if not self._compiled:
            for switch, table in self.tables.items():
                self._compiled[switch] = tcam_program(
                    table, self.topo.ports(switch)
                )
        return self._compiled

    def with_programs(
        self, programs: Dict[str, List[TcamEntry]]
    ) -> "DeploymentArtifact":
        """Copy of the artifact with explicit programs (fault injection)."""
        return replace(self, programs=programs)

    @staticmethod
    def from_plan(
        plan: "TaggerPlanLike",
        tcam_budget: Optional[int] = None,
    ) -> "DeploymentArtifact":
        """Strip a planner result down to its deployable artifact.

        Accepts anything exposing ``topo``, ``tables`` and ``queue_map``
        (duck-typed so :mod:`repro.lint` never imports the planner).
        """
        return DeploymentArtifact(
            topo=plan.topo,
            tables=plan.tables,
            queue_map=plan.queue_map,
            tcam_budget=tcam_budget,
        )


class TaggerPlanLike(Protocol):
    """Structural stand-in for :class:`repro.core.planner.TaggerPlan`."""

    topo: Topology
    tables: Dict[str, RuleTable]
    queue_map: QueueMap
