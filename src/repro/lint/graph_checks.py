"""T-family checks: certify Theorem 5.1 from the rule tables alone.

The effective tagged graph is re-derived from the deployed rules via
:func:`repro.core.rules.rules_to_tagged_graph` — no planner state is
consulted — and then:

- **T002 / T003 / T004** validate each rule individually (monotone
  rewrites, valid tag range, existing ports), *before* graph
  construction, because a malformed rule must surface as a diagnostic
  rather than as a reconstruction crash;
- **T001** runs the R1 per-tag cycle search on the reconstructed graph
  (violating rules are excluded from reconstruction so one bad rule
  cannot mask a cycle elsewhere).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.rules import MatchKey, RuleTable, rules_to_tagged_graph
from repro.core.tags import INITIAL_TAG, LOSSY_TAG
from repro.exceptions import TopologyError
from repro.lint.diagnostics import Diagnostic, make_diagnostic
from repro.topology.base import Topology


def _valid_rules(
    topo: Topology,
    tables: Dict[str, RuleTable],
    diagnostics: List[Diagnostic],
) -> Dict[str, RuleTable]:
    """Per-rule validation (T002-T004); returns only the well-formed rules."""
    clean: Dict[str, RuleTable] = {}
    for switch in sorted(tables):
        table = tables[switch]
        if switch not in topo.nodes or not topo.node(switch).is_switch:
            diagnostics.append(
                make_diagnostic(
                    "T004",
                    f"rules installed on unknown switch {switch!r}",
                    switch=switch,
                )
            )
            continue
        ports = topo.ports(switch)
        kept = RuleTable(switch=switch)
        for key in sorted(table.rules):
            tag, in_port, out_port = key
            new_tag = table.rules[key]
            if not _check_rule(
                topo, switch, ports, key, new_tag, diagnostics
            ):
                continue
            kept.rules[key] = new_tag
        clean[switch] = kept
    return clean


def _check_rule(
    topo: Topology,
    switch: str,
    ports: Dict[int, str],
    key: MatchKey,
    new_tag: int,
    diagnostics: List[Diagnostic],
) -> bool:
    tag, in_port, out_port = key
    location = f"({tag},{in_port},{out_port})->{new_tag}"
    ok = True
    if tag < INITIAL_TAG or new_tag < LOSSY_TAG:
        diagnostics.append(
            make_diagnostic(
                "T003",
                f"rule matches tag {tag} / rewrites to {new_tag}; lossless "
                f"tags start at {INITIAL_TAG} and only {LOSSY_TAG} demotes",
                switch=switch,
                location=location,
            )
        )
        ok = False
    for label, port in (("ingress", in_port), ("egress", out_port)):
        if port not in ports:
            diagnostics.append(
                make_diagnostic(
                    "T004",
                    f"rule references {label} port {port}, but {switch!r} "
                    f"has no such port",
                    switch=switch,
                    location=location,
                )
            )
            ok = False
    if ok and new_tag != LOSSY_TAG and new_tag < tag:
        diagnostics.append(
            make_diagnostic(
                "T002",
                f"rewrite decreases the tag ({tag} -> {new_tag}); a packet "
                "could re-enter an earlier priority class and close a "
                "cross-tag buffer dependency cycle",
                switch=switch,
                location=location,
            )
        )
        ok = False
    return ok


def check_graph(
    topo: Topology, tables: Dict[str, RuleTable]
) -> Tuple[List[Diagnostic], Dict[str, int]]:
    """Run the T-family checks; returns (diagnostics, graph stats)."""
    diagnostics: List[Diagnostic] = []
    clean = _valid_rules(topo, tables, diagnostics)
    try:
        graph = rules_to_tagged_graph(topo, clean)
    except TopologyError as exc:  # pragma: no cover - defense in depth
        diagnostics.append(
            make_diagnostic("T004", f"graph reconstruction failed: {exc}")
        )
        return diagnostics, {}
    for tag in graph.tags():
        cycle = graph.find_tag_cycle(tag)
        if cycle is None:
            continue
        pretty = " -> ".join(f"{sw}:{port}" for (sw, port), _ in cycle)
        diagnostics.append(
            make_diagnostic(
                "T001",
                f"tag {tag} subgraph contains the buffer-dependency cycle "
                f"{pretty} -> {cycle[0][0][0]}:{cycle[0][0][1]} "
                "(requirement R1 fails; this is a CBD)",
                switch=cycle[0][0][0],
                location=f"tag {tag}",
            )
        )
    stats = {
        "graph_nodes": graph.num_nodes,
        "graph_edges": graph.num_edges,
        "graph_tags": graph.num_tags,
    }
    return diagnostics, stats
