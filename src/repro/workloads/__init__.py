"""Workload generators for the evaluation scenarios."""

from repro.workloads.random_flows import random_pairs, random_permutation_flows
from repro.workloads.shuffle import many_to_one, one_to_many

__all__ = [
    "many_to_one",
    "one_to_many",
    "random_permutation_flows",
    "random_pairs",
]
