"""Shuffle workloads (paper Fig. 12).

The PAUSE-propagation experiment runs a many-to-one data shuffle into one
host and a one-to-many shuffle out of another, then reroutes two of the
flows onto 1-bounce paths; the resulting deadlock's PAUSE frames
propagate until every flow is frozen. These helpers build the flow sets.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import SimulationError
from repro.simulator.flow import Flow


def many_to_one(
    sources: Sequence[str],
    sink: str,
    start: float = 0.0,
    packet_size: int = 4096,
    window: int = 8,
) -> List[Flow]:
    """A shuffle of one flow from each source into ``sink``."""
    if sink in sources:
        raise SimulationError("sink cannot also be a source")
    return [
        Flow(src=src, dst=sink, start=start, packet_size=packet_size, window=window)
        for src in sources
    ]


def one_to_many(
    source: str,
    sinks: Sequence[str],
    start: float = 0.0,
    packet_size: int = 4096,
    window: int = 8,
) -> List[Flow]:
    """A shuffle of one flow from ``source`` to each sink."""
    if source in sinks:
        raise SimulationError("source cannot also be a sink")
    return [
        Flow(src=source, dst=dst, start=start, packet_size=packet_size, window=window)
        for dst in sinks
    ]
