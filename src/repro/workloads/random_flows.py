"""Random traffic matrices for performance-penalty experiments (§8.3)."""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.exceptions import SimulationError
from repro.simulator.flow import Flow


def random_permutation_flows(
    hosts: Sequence[str],
    start: float = 0.0,
    packet_size: int = 4096,
    window: int = 8,
    seed: int = 1,
) -> List[Flow]:
    """A random permutation: every host sends to exactly one other host.

    Derangement-style: no host sends to itself.
    """
    if len(hosts) < 2:
        raise SimulationError("need at least two hosts for a permutation")
    rng = random.Random(seed)
    sources = list(hosts)
    destinations = list(hosts)
    while True:
        rng.shuffle(destinations)
        if all(s != d for s, d in zip(sources, destinations)):
            break
    return [
        Flow(src=s, dst=d, start=start, packet_size=packet_size, window=window)
        for s, d in zip(sources, destinations)
    ]


def random_pairs(
    hosts: Sequence[str],
    num_flows: int,
    start: float = 0.0,
    packet_size: int = 4096,
    window: int = 8,
    seed: int = 1,
) -> List[Flow]:
    """``num_flows`` flows between uniformly random distinct host pairs."""
    if len(hosts) < 2:
        raise SimulationError("need at least two hosts")
    rng = random.Random(seed)
    flows = []
    for _ in range(num_flows):
        src, dst = rng.sample(list(hosts), 2)
        flows.append(
            Flow(src=src, dst=dst, start=start, packet_size=packet_size, window=window)
        )
    return flows
