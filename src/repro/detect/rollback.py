"""Plan rollback driven by confirmed deadlock detections.

A confirmed runtime deadlock under a deployed Tagger plan means the
plan's ELP assumptions are broken in the live fabric. Quarantining the
victim queue restores forward progress, but the *plan* on the victim
switch is still wrong — the safe control-plane reaction is to roll that
switch back to safeguard-only tables (every unmatched packet demotes to
lossy, which cannot deadlock) through the same fault-tolerant
:class:`~repro.deploy.RolloutOrchestrator` ordinary rollouts use, so
the rollback inherits wave ordering, readback verification and
transitional-safety certification instead of bypassing them.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.core.rules import RuleTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.deploy.orchestrator import RolloutReport
    from repro.obs.telemetry import Telemetry
    from repro.topology.base import Topology


class RolloutDriver:
    """Rolls one switch at a time back to safeguard-only tables.

    Holds the fabric's currently-deployed tables; each
    :meth:`rollback` call computes the target state (identical except
    the victim switch's table is emptied — the TCAM safeguard default
    then demotes everything to lossy), pushes it through a fresh agent
    fleet via the orchestrator, and on convergence adopts the new state
    as current.
    """

    def __init__(
        self,
        topo: "Topology",
        tables: Dict[str, RuleTable],
        seed: int = 0,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.topo = topo
        self.tables = {
            switch: RuleTable(
                switch=switch, rules=dict(table.rules), policy=table.policy
            )
            for switch, table in tables.items()
        }
        self.seed = seed
        self.telemetry = telemetry
        self.reports: Dict[str, "RolloutReport"] = {}

    @property
    def converged_outcome(self) -> str:
        from repro.deploy.orchestrator import CONVERGED

        return CONVERGED

    def table_for(self, switch: str) -> RuleTable:
        """The table ``switch`` runs after its (converged) rollback."""
        return self.tables.get(switch, RuleTable(switch=switch))

    def rollback(self, switch: str) -> "RolloutReport":
        """Wipe ``switch`` to safeguard-only via the deploy orchestrator."""
        from repro.deploy.agent import fleet_from_tables
        from repro.deploy.orchestrator import (
            RolloutConfig,
            RolloutOrchestrator,
        )

        old = self.tables
        new = {
            name: RuleTable(
                switch=name, rules=dict(table.rules), policy=table.policy
            )
            for name, table in old.items()
        }
        new[switch] = RuleTable(switch=switch)
        extra = (switch,) if switch not in old else ()
        agents = fleet_from_tables(old, extra_switches=extra)
        report = RolloutOrchestrator(
            self.topo,
            old,
            new,
            config=RolloutConfig(lint_boundaries=False, seed=self.seed),
            agents=agents,
            telemetry=self.telemetry,
        ).run()
        self.reports[switch] = report
        if report.outcome == self.converged_outcome:
            self.tables = new
        return report
