"""Head-to-head detection matrix: Tagger-on vs detection-only vs both.

One fuzz scenario, one CBD trigger recipe (the Fig. 10 throttle, as the
dynamic oracle runs it), three fabrics:

- ``tagger``   — the scenario's Tagger plan, detector observing
  (prevention should leave the detector nothing to confirm);
- ``detect``   — plain PFC, detector + quarantine recovery (prevention
  off: the deadlock forms, must be detected and broken);
- ``both``     — Tagger plan *and* the full detection/quarantine/
  rollback loop (belt and braces).

Every cell runs the seeded :class:`~repro.simulator.deadlock.
OracleSampler` alongside, so detector-vs-oracle latency is measured on
one consistent clock. A fourth, ``transient`` cell replays congestion
that cannot form a cycle (a single leg of the trigger pair) — the
false-positive control the fuzz harness asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.detect.arbiter import RecoveryArbiter
from repro.detect.coordinator import RecoveryCoordinator
from repro.exceptions import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fuzz.scenarios import Scenario
    from repro.simulator.detection import DetectorConfig


@dataclass
class CellResult:
    """One fabric's run: oracle ground truth vs detector behaviour."""

    name: str
    #: Oracle (ground truth) facts, on the sampler's seeded clock.
    oracle_deadlocked: bool = False
    oracle_first_cycle_time: Optional[float] = None
    oracle_deadlocked_at_end: bool = False
    #: Detector facts.
    confirms: int = 0
    first_confirm_time: Optional[float] = None
    suspects: int = 0
    clears: Dict[str, int] = field(default_factory=dict)
    #: Recovery facts.
    quarantines: int = 0
    packets_moved: int = 0
    rearms: int = 0
    rollback_outcomes: Dict[str, str] = field(default_factory=dict)
    delivered_at_confirm: Optional[int] = None
    delivered_end: int = 0
    lossless_drops: int = 0

    @property
    def detection_latency(self) -> Optional[float]:
        """First confirm minus first oracle sighting (same sim clock)."""
        if self.first_confirm_time is None:
            return None
        if self.oracle_first_cycle_time is None:
            return None
        return self.first_confirm_time - self.oracle_first_cycle_time

    @property
    def progress_restored(self) -> bool:
        """Did delivery resume after the confirm, with no live cycle left?"""
        if self.delivered_at_confirm is None:
            return False
        return (
            self.delivered_end > self.delivered_at_confirm
            and not self.oracle_deadlocked_at_end
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "oracle_deadlocked": self.oracle_deadlocked,
            "oracle_first_cycle_time": self.oracle_first_cycle_time,
            "oracle_deadlocked_at_end": self.oracle_deadlocked_at_end,
            "confirms": self.confirms,
            "first_confirm_time": self.first_confirm_time,
            "detection_latency": self.detection_latency,
            "suspects": self.suspects,
            "clears": dict(sorted(self.clears.items())),
            "quarantines": self.quarantines,
            "packets_moved": self.packets_moved,
            "rearms": self.rearms,
            "rollbacks": dict(sorted(self.rollback_outcomes.items())),
            "progress_restored": self.progress_restored,
            "delivered_end": self.delivered_end,
            "lossless_drops": self.lossless_drops,
        }


@dataclass
class MatrixOutcome:
    """The whole matrix for one scenario."""

    ran: bool
    reason: str = ""
    pairs_tried: int = 0
    cells: Dict[str, CellResult] = field(default_factory=dict)
    #: Upper bound on acceptable detect-vs-oracle latency (invariant 18).
    latency_bound: float = 0.0

    def cell(self, name: str) -> Optional[CellResult]:
        return self.cells.get(name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ran": self.ran,
            "reason": self.reason,
            "pairs_tried": self.pairs_tried,
            "latency_bound": self.latency_bound,
            "cells": {
                name: cell.to_dict()
                for name, cell in sorted(self.cells.items())
            },
        }


def latency_bound_for(
    detector_config: "DetectorConfig", oracle_period: float
) -> float:
    """Worst acceptable (first confirm - first oracle sighting).

    The detector needs ``confirm_scans`` consecutive re-observations
    after the loop closes; the oracle may have sampled the cycle up to
    one period earlier. One extra scan of slack absorbs chain
    propagation (PFC delays are microseconds against millisecond
    polls).
    """
    return (
        detector_config.poll * (detector_config.confirm_scans + 1)
        + oracle_period
    )


def run_cell(
    name: str,
    topo: Any,
    legs: Any,
    duration: float,
    plan: Any = None,
    quarantine: bool = True,
    rollback: bool = False,
    detector_config: Optional["DetectorConfig"] = None,
    oracle_period: float = 0.005,
    seed: int = 0,
) -> CellResult:
    """Run one fabric with detector + sampler and collect the facts."""
    from repro.detect.rollback import RolloutDriver
    from repro.fuzz.oracle import _drive
    from repro.routing.shortest import shortest_path_tables
    from repro.simulator.deadlock import OracleSampler
    from repro.simulator.detection import DeadlockDetector, DetectorConfig
    from repro.simulator.network import SimNetwork

    config = detector_config or DetectorConfig()
    table = shortest_path_tables(topo)
    if plan is not None:
        net = SimNetwork.with_plan(topo, table, plan)
    else:
        net = SimNetwork(topo, table)
    sampler = OracleSampler(net, period=oracle_period, seed=seed)
    sampler.install()
    detector = DeadlockDetector(net, config)
    result = CellResult(name=name)
    if quarantine:
        driver = None
        if rollback and plan is not None:
            driver = RolloutDriver(topo, plan.tables, seed=seed)
        coordinator = RecoveryCoordinator(
            net, arbiter=RecoveryArbiter(), rollout_driver=driver
        )

        def _on_confirm(detection: Any) -> None:
            if result.delivered_at_confirm is None:
                result.delivered_at_confirm = sum(
                    net.metrics.delivered_packets.values()
                )
            coordinator.on_confirm(detection)

        detector.on_confirm = _on_confirm
    else:
        coordinator = None

        def _observe_confirm(detection: Any) -> None:
            if result.delivered_at_confirm is None:
                result.delivered_at_confirm = sum(
                    net.metrics.delivered_packets.values()
                )

        detector.on_confirm = _observe_confirm
    detector.install()
    _drive(net, legs, duration)

    result.oracle_deadlocked = sampler.deadlock_seen
    result.oracle_first_cycle_time = sampler.first_cycle_time
    result.oracle_deadlocked_at_end = sampler.deadlocked_at_end()
    result.confirms = detector.confirms
    result.first_confirm_time = detector.first_confirm_time()
    result.suspects = detector.suspects_raised
    result.clears = detector.clear_reasons()
    result.delivered_end = sum(net.metrics.delivered_packets.values())
    result.lossless_drops = net.metrics.drops.get("lossless_overflow", 0)
    if coordinator is not None:
        result.quarantines = len(coordinator.quarantines)
        result.packets_moved = sum(
            q.moved for q in coordinator.quarantines
        )
        result.rearms = coordinator.rearms
        result.rollback_outcomes = dict(coordinator.rollback_outcomes)
    return result


def detection_matrix(
    scenario: "Scenario",
    duration: float = 0.3,
    detector_config: Optional["DetectorConfig"] = None,
    oracle_period: float = 0.005,
    max_pairs: int = 8,
    seed: int = 0,
) -> MatrixOutcome:
    """Run the full head-to-head matrix for one fuzz scenario.

    Candidate CBD pairs are tried through the ``detect`` cell until one
    actually deadlocks (matching the dynamic oracle's search); the
    Tagger cells then replay that trigger. The ``transient`` cell
    always runs when any viable pair exists.
    """
    from repro.fuzz.oracle import _host_endpoints, _plan_for, find_cbd_pairs
    from repro.simulator.detection import DetectorConfig

    config = detector_config or DetectorConfig()
    topo = scenario.build_topology()
    elp = scenario.build_elp(topo)
    pairs = find_cbd_pairs(topo, list(elp.paths), max_pairs=max_pairs)
    if not pairs:
        return MatrixOutcome(
            ran=False, reason="no CBD-forming path pair in ELP"
        )
    viable = []
    for pair in pairs:
        legs = [_host_endpoints(topo, path) for path in pair]
        if all(leg is not None for leg in legs):
            viable.append(legs)
    if not viable:
        return MatrixOutcome(
            ran=False, reason="no CBD pair with hosts at both endpoints"
        )

    outcome = MatrixOutcome(
        ran=True,
        latency_bound=latency_bound_for(config, oracle_period),
    )
    detect_cell: Optional[CellResult] = None
    trigger_legs = None
    for legs in viable:
        outcome.pairs_tried += 1
        cell = run_cell(
            "detect",
            topo,
            legs,
            duration,
            plan=None,
            quarantine=True,
            detector_config=config,
            oracle_period=oracle_period,
            seed=seed,
        )
        detect_cell = cell
        if cell.oracle_deadlocked:
            trigger_legs = legs
            break
    assert detect_cell is not None
    outcome.cells["detect"] = detect_cell

    # False-positive control: one leg of the (last-tried) pair is a
    # congestion tree — same throttle, no cycle to close.
    transient_legs = [viable[0][0]]
    outcome.cells["transient"] = run_cell(
        "transient",
        topo,
        transient_legs,
        duration,
        plan=None,
        quarantine=True,
        detector_config=config,
        oracle_period=oracle_period,
        seed=seed,
    )

    if trigger_legs is not None:
        try:
            plan = _plan_for(scenario, topo, elp)
        except ReproError as exc:
            outcome.reason = f"no plan for scenario: {exc}"
            return outcome
        outcome.cells["tagger"] = run_cell(
            "tagger",
            topo,
            trigger_legs,
            duration,
            plan=plan,
            quarantine=False,
            detector_config=config,
            oracle_period=oracle_period,
            seed=seed,
        )
        outcome.cells["both"] = run_cell(
            "both",
            topo,
            trigger_legs,
            duration,
            plan=plan,
            quarantine=True,
            rollback=True,
            detector_config=config,
            oracle_period=oracle_period,
            seed=seed,
        )
    return outcome


def false_positive_cells(outcome: MatrixOutcome) -> List[CellResult]:
    """Cells whose ground truth showed *no* cycle (FP assertion targets)."""
    return [
        cell
        for cell in outcome.cells.values()
        if not cell.oracle_deadlocked
    ]
