"""Detection-driven recovery coordination (the DCFIT loop).

Thin glue between three existing layers:

- :mod:`repro.simulator.detection` — the per-switch DCFIT-style
  detector (observes PAUSE propagation, confirms deadlocks);
- this package — arbitration (:class:`RecoveryArbiter`), quarantine /
  re-arm / flap suppression (:class:`RecoveryCoordinator`), and plan
  rollback through the deploy orchestrator (:class:`RolloutDriver`);
- :mod:`repro.detect.matrix` — the head-to-head scenario matrix the
  fuzz harness scores the loop with, against the seeded ground-truth
  :class:`~repro.simulator.deadlock.OracleSampler`.

See ``docs/DETECTION.md`` for the state machine and tuning guide.
"""

from repro.detect.arbiter import OwnerKey, RecoveryArbiter
from repro.detect.coordinator import (
    DETECTOR_OWNER,
    QuarantineEvent,
    RecoveryCoordinator,
)
from repro.detect.matrix import (
    CellResult,
    MatrixOutcome,
    detection_matrix,
    false_positive_cells,
    latency_bound_for,
    run_cell,
)
from repro.detect.rollback import RolloutDriver

__all__ = [
    "RecoveryArbiter",
    "OwnerKey",
    "RecoveryCoordinator",
    "QuarantineEvent",
    "DETECTOR_OWNER",
    "RolloutDriver",
    "CellResult",
    "MatrixOutcome",
    "detection_matrix",
    "false_positive_cells",
    "latency_bound_for",
    "run_cell",
]
