"""Single-owner arbitration for queue-level recovery actions.

Two independent recovery mechanisms can target the same egress queue:
the :class:`~repro.simulator.watchdog.PfcWatchdog` (discard on long
pause) and the detector-driven quarantine (demote to lossy). Letting
both act is a double-demote: the watchdog destroys lossless packets the
quarantine was about to drain intact. The arbiter serializes them — one
*owner* per ``(switch, queue)`` at a time, first acquirer wins, and the
loser skips its action entirely for as long as the owner holds the key.

Deliberately dumb: a dict wrapper with no clocks, no priorities, no
imports. Determinism of who wins comes from the simulator's
deterministic event order, not from the arbiter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Arbitration domain: one lossless queue on one switch (all ports — a
#: deadlock recovery on any port's queue must not race another on the
#: same priority of the same switch).
OwnerKey = Tuple[str, int]


@dataclass
class RecoveryArbiter:
    """First-acquirer-wins ownership of per-(switch, queue) recovery."""

    _owners: Dict[OwnerKey, str] = field(default_factory=dict)
    #: Audit log of (switch, queue, owner, granted) decisions, in order.
    decisions: List[Tuple[str, int, str, bool]] = field(default_factory=list)

    def acquire(self, switch: str, queue: int, owner: str) -> bool:
        """Try to own recovery of ``(switch, queue)``; idempotent per owner."""
        key = (switch, queue)
        holder = self._owners.get(key)
        granted = holder is None or holder == owner
        if granted:
            self._owners[key] = owner
        self.decisions.append((switch, queue, owner, granted))
        return granted

    def release(self, switch: str, queue: int, owner: str) -> None:
        """Release ownership; a non-owner's release is a no-op."""
        key = (switch, queue)
        if self._owners.get(key) == owner:
            del self._owners[key]

    def owner_of(self, switch: str, queue: int) -> Optional[str]:
        return self._owners.get((switch, queue))

    def denials(self, owner: str) -> int:
        """How many acquire attempts by ``owner`` were denied."""
        return sum(
            1
            for _, _, who, granted in self.decisions
            if who == owner and not granted
        )
