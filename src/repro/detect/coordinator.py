"""Recovery coordination: confirmed detection -> quarantine -> re-arm.

The detector (:mod:`repro.simulator.detection`) only *observes*. This
module closes the loop: on a confirmed deadlock it

1. **arbitrates** — acquires the single recovery owner for the victim
   ``(switch, queue)`` so the PFC watchdog cannot double-demote it;
2. **quarantines** — moves the victim egress queue's packets to the
   lossy queue (re-tagged :data:`~repro.core.tags.LOSSY_TAG`, ingress
   accounts untouched so they release normally on transmit) and marks
   the queue in ``net.quarantined`` so traffic keeps flowing lossy
   while the cycle drains. Unlike the watchdog/breaker baselines this
   destroys **zero** lossless packets;
3. **rolls back** — when the fabric runs a Tagger plan whose
   assumptions evidently broke, drives the deploy-layer
   :class:`~repro.deploy.RolloutOrchestrator` to wipe the victim
   switch back to safeguard-only tables (see
   :class:`repro.detect.rollback.RolloutDriver`);
4. **re-arms** — restores the queue to lossless service after a hold
   period that grows exponentially on repeat episodes (flap
   suppression), releasing ownership so either mechanism may act on a
   genuine recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.pipeline import LOSSY_QUEUE, PipelineConfig
from repro.core.tags import LOSSY_TAG
from repro.detect.arbiter import RecoveryArbiter
from repro.obs.events import (
    EV_DETECT_QUARANTINE,
    EV_DETECT_REARM,
    EV_DETECT_ROLLBACK,
)
from repro.obs.instrument import detect_metric_handles

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.detect.rollback import RolloutDriver
    from repro.simulator.detection import Detection
    from repro.simulator.network import SimNetwork

#: Owner name the coordinator uses with the recovery arbiter.
DETECTOR_OWNER = "detector"


@dataclass(frozen=True)
class QuarantineEvent:
    """One quarantine episode (queue demoted to lossy service)."""

    time: float
    switch: str
    port: int
    queue: int
    #: Packets moved intact from the lossless FIFO to the lossy one.
    moved: int
    #: 1-based episode count for this queue (flap-suppression input).
    episode: int
    #: Seconds until the queue is re-armed to lossless service.
    hold: float


class RecoveryCoordinator:
    """Drives quarantine/rollback/re-arm from confirmed detections.

    Attributes:
        net: The fabric to protect.
        arbiter: Optional shared :class:`RecoveryArbiter`; when given,
            quarantine only proceeds if the coordinator wins ownership
            of the victim ``(switch, queue)``.
        hold: Base quarantine duration before re-arm.
        flap_multiplier / hold_max: Each further episode on the same
            queue multiplies the hold (capped), so a flapping deadlock
            spends exponentially longer in lossy service instead of
            oscillating at the detector's confirmation cadence.
        rollout_driver: Optional :class:`RolloutDriver`; when set, the
            first confirmed detection on a switch also rolls that
            switch's plan back to safeguard-only tables through the
            deploy orchestrator, and — if the rollout converges —
            installs the resulting pipeline on the live switch.
    """

    def __init__(
        self,
        net: "SimNetwork",
        arbiter: Optional[RecoveryArbiter] = None,
        hold: float = 0.05,
        flap_multiplier: float = 2.0,
        hold_max: float = 1.0,
        rollout_driver: Optional["RolloutDriver"] = None,
    ) -> None:
        self.net = net
        self.arbiter = arbiter
        self.hold = hold
        self.flap_multiplier = flap_multiplier
        self.hold_max = hold_max
        self.rollout_driver = rollout_driver
        self.quarantines: List[QuarantineEvent] = []
        self.rearms = 0
        self.arbitration_skips = 0
        self.rollback_outcomes: Dict[str, str] = {}
        self._episodes: Dict[Tuple[str, int, int], int] = {}
        self._handles: Optional[Dict[str, object]] = None
        if net.telemetry is not None:
            self._handles = detect_metric_handles(net.telemetry.registry)

    # ------------------------------------------------------------------
    # Confirmed-detection entry point (wired as detector.on_confirm)
    # ------------------------------------------------------------------
    def on_confirm(self, detection: "Detection") -> None:
        switch, port, queue = detection.switch, detection.port, detection.queue
        if (switch, port, queue) in self.net.quarantined:
            return  # already under quarantine (re-confirm while held)
        if self.arbiter is not None and not self.arbiter.acquire(
            switch, queue, DETECTOR_OWNER
        ):
            self.arbitration_skips += 1
            return
        episode = self._episodes.get((switch, port, queue), 0) + 1
        self._episodes[(switch, port, queue)] = episode
        hold = self.hold_for(episode)
        moved = self._quarantine(switch, port, queue)
        now = self.net.sim.now
        self.quarantines.append(
            QuarantineEvent(now, switch, port, queue, moved, episode, hold)
        )
        if self.net.telemetry is not None:
            self.net.telemetry.emit(
                EV_DETECT_QUARANTINE,
                time=now,
                switch=switch,
                port=port,
                queue=queue,
                moved=moved,
            )
            assert self._handles is not None
            self._handles["quarantines"].inc()  # type: ignore[attr-defined]
        self.net.sim.schedule(
            hold, lambda: self._rearm(switch, port, queue)
        )
        if self.rollout_driver is not None:
            self._rollback(switch)

    def hold_for(self, episode: int) -> float:
        """Quarantine hold before the ``episode``-th re-arm (1-based)."""
        return min(
            self.hold_max,
            self.hold * (self.flap_multiplier ** (episode - 1)),
        )

    # ------------------------------------------------------------------
    # Quarantine mechanics
    # ------------------------------------------------------------------
    def _quarantine(self, switch_name: str, port: int, queue: int) -> int:
        """Demote the victim queue to lossy service; returns packets moved.

        The stalled packets are re-enqueued on the (never-paused) lossy
        queue with :data:`LOSSY_TAG` so every later hop keeps them
        lossy. Their ingress accounts are *not* released here — they
        release on transmit exactly like any forwarded packet, which is
        what lifts the upstream pauses and drains the rest of the
        cycle without destroying a single lossless packet.
        """
        self.net.quarantined.add((switch_name, port, queue))
        switch = self.net.switches[switch_name]
        tx = switch.tx_ports[port]
        fifo = tx.queues.get(queue)
        moved = 0
        while fifo:
            packet = fifo.popleft()
            tx.queued_bytes[queue] -= packet.size
            self.net.metrics.record_demotion(
                self.net.sim.now,
                switch_name,
                packet.tag,
                LOSSY_TAG,
                packet.flow_id,
            )
            packet.tag = LOSSY_TAG
            tx.enqueue(packet, LOSSY_QUEUE)
            moved += 1
        return moved

    def _rearm(self, switch: str, port: int, queue: int) -> None:
        self.net.quarantined.discard((switch, port, queue))
        if self.arbiter is not None:
            self.arbiter.release(switch, queue, DETECTOR_OWNER)
        self.rearms += 1
        if self.net.telemetry is not None:
            episode = self._episodes.get((switch, port, queue), 1)
            self.net.telemetry.emit(
                EV_DETECT_REARM,
                time=self.net.sim.now,
                switch=switch,
                port=port,
                queue=queue,
                backoff=self.hold_for(episode),
            )
            assert self._handles is not None
            self._handles["rearms"].inc()  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Plan rollback (deploy layer)
    # ------------------------------------------------------------------
    def _rollback(self, switch: str) -> None:
        if switch in self.rollback_outcomes:
            return  # one rollback per switch per run
        assert self.rollout_driver is not None
        report = self.rollout_driver.rollback(switch)
        self.rollback_outcomes[switch] = report.outcome
        if self.net.telemetry is not None:
            self.net.telemetry.emit(
                EV_DETECT_ROLLBACK,
                time=self.net.sim.now,
                switch=switch,
                outcome=report.outcome,
            )
            assert self._handles is not None
            self._handles["rollbacks"].inc(  # type: ignore[attr-defined]
                outcome=report.outcome
            )
        if report.outcome == self.rollout_driver.converged_outcome:
            # Reflect the control-plane result on the live data plane:
            # the victim switch now runs safeguard-only (lossy) tables.
            live = self.net.switches[switch]
            live.pipeline = PipelineConfig(
                rule_table=self.rollout_driver.table_for(switch),
                queue_map=live.pipeline.queue_map,
                decouple_egress=live.pipeline.decouple_egress,
            )
