"""Optional packet-event tracing and queue-occupancy sampling.

Debugging a PFC fabric needs two views the aggregate metrics don't give:

- :class:`PacketTracer` — a per-event log (receive / forward / deliver /
  drop / pause / resume) with switch- and flow-filters, bounded by a
  ring-buffer size so long runs don't exhaust memory;
- :class:`QueueSampler` — periodic samples of selected ingress accounts
  and egress queue depths, producing the buffer-occupancy time series
  the paper-style analyses plot.

Both attach to a :class:`~repro.simulator.network.SimNetwork` after
construction and are pure observers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import SimNetwork

#: Event kinds a tracer records.
EV_RECEIVE = "receive"
EV_FORWARD = "forward"
EV_DELIVER = "deliver"
EV_DROP = "drop"
EV_PAUSE = "pause"
EV_RESUME = "resume"


@dataclass(frozen=True)
class TraceEvent:
    """One traced event."""

    time: float
    kind: str
    node: str
    flow_id: Optional[int] = None
    packet_id: Optional[int] = None
    tag: Optional[int] = None
    detail: str = ""


@dataclass
class PacketTracer:
    """Bounded event log with optional flow/node filters.

    Attach with :meth:`attach`; afterwards the network calls
    :meth:`record` on every observable event. ``capacity`` bounds memory
    (oldest events are evicted).
    """

    capacity: int = 10_000
    flows: Optional[Sequence[int]] = None
    nodes: Optional[Sequence[str]] = None
    events: Deque[TraceEvent] = field(default_factory=deque)

    def attach(self, net: "SimNetwork") -> "PacketTracer":
        net.tracer = self
        return self

    def record(
        self,
        time: float,
        kind: str,
        node: str,
        flow_id: Optional[int] = None,
        packet_id: Optional[int] = None,
        tag: Optional[int] = None,
        detail: str = "",
    ) -> None:
        if self.flows is not None and flow_id not in self.flows:
            return
        if self.nodes is not None and node not in self.nodes:
            return
        self.events.append(
            TraceEvent(time, kind, node, flow_id, packet_id, tag, detail)
        )
        while len(self.events) > self.capacity:
            self.events.popleft()

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def packet_journey(self, packet_id: int) -> List[TraceEvent]:
        """All events of one packet, in order — its life story."""
        return [e for e in self.events if e.packet_id == packet_id]

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class QueueSample:
    """One sampled occupancy point."""

    time: float
    switch: str
    port: int
    queue: int
    ingress_bytes: int
    egress_bytes: int
    paused: bool


@dataclass
class QueueSampler:
    """Periodic occupancy sampler for selected (switch, port, queue) spots.

    ``spots`` are ``(switch, in_port_peer_or_port, queue)`` — the port may
    be given as the neighbor's name (resolved once) or a port number.
    """

    net: "SimNetwork"
    spots: Sequence[Tuple[str, object, int]]
    period: float = 0.001
    samples: List[QueueSample] = field(default_factory=list)
    _resolved: List[Tuple[str, int, int]] = field(default_factory=list)
    _installed: bool = False

    def install(self) -> None:
        if self._installed:
            return
        self._installed = True
        for switch, port_spec, queue in self.spots:
            if isinstance(port_spec, str):
                port = self.net.topo.port_to(switch, port_spec)
            else:
                port = int(port_spec)  # type: ignore[arg-type]
            self._resolved.append((switch, port, queue))
        self.net.sim.schedule(self.period, self._tick)

    def _tick(self) -> None:
        now = self.net.sim.now
        for switch_name, port, queue in self._resolved:
            switch = self.net.switches[switch_name]
            tx = switch.tx_ports.get(port)
            self.samples.append(
                QueueSample(
                    time=now,
                    switch=switch_name,
                    port=port,
                    queue=queue,
                    ingress_bytes=switch.accounting.occupancy_of(port, queue),
                    egress_bytes=tx.bytes_queued(queue) if tx else 0,
                    paused=bool(tx and tx.pause.is_paused(queue)),
                )
            )
        self.net.sim.schedule(self.period, self._tick)

    def series(
        self, switch: str, port: int, queue: int
    ) -> List[Tuple[float, int, int, bool]]:
        """(time, ingress_bytes, egress_bytes, paused) for one spot."""
        return [
            (s.time, s.ingress_bytes, s.egress_bytes, s.paused)
            for s in self.samples
            if s.switch == switch and s.port == port and s.queue == queue
        ]

    def peak_ingress(self, switch: str, port: int, queue: int) -> int:
        return max(
            (
                s.ingress_bytes
                for s in self.samples
                if s.switch == switch and s.port == port and s.queue == queue
            ),
            default=0,
        )
