"""Optional packet-event tracing and queue-occupancy sampling.

Debugging a PFC fabric needs two views the aggregate metrics don't give:

- :class:`PacketTracer` — a per-event log (receive / forward / deliver /
  drop / pause / resume) with switch- and flow-filters, bounded by a
  ring-buffer size so long runs don't exhaust memory;
- :class:`QueueSampler` — periodic samples of selected ingress accounts
  and egress queue depths, producing the buffer-occupancy time series
  the paper-style analyses plot.

Both attach to a :class:`~repro.simulator.network.SimNetwork` after
construction and are pure observers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.obs.bus import TelemetryBus
from repro.obs.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import SimNetwork

#: Event kinds a tracer records. These are the short names the query API
#: speaks; on the bus they are namespaced as ``trace.<kind>`` (see
#: ``repro.obs.events``).
EV_RECEIVE = "receive"
EV_FORWARD = "forward"
EV_DELIVER = "deliver"
EV_DROP = "drop"
EV_PAUSE = "pause"
EV_RESUME = "resume"

_TRACE_PREFIX = "trace."


@dataclass(frozen=True)
class TraceEvent:
    """One traced event."""

    time: float
    kind: str
    node: str
    flow_id: Optional[int] = None
    packet_id: Optional[int] = None
    tag: Optional[int] = None
    detail: str = ""


def _from_bus_event(event: Event) -> TraceEvent:
    fields = event.fields
    return TraceEvent(
        time=event.time,
        kind=event.kind[len(_TRACE_PREFIX):],
        node=fields["node"],
        flow_id=fields.get("flow"),
        packet_id=fields.get("packet"),
        tag=fields.get("tag"),
        detail=fields.get("detail", ""),
    )


class PacketTracer:
    """Bounded per-hop event log with optional flow/node filters.

    Sits on a :class:`~repro.obs.bus.TelemetryBus`: every trace is a
    structured ``trace.*`` event, so the same stream the query API reads
    (:meth:`of_kind`, :meth:`packet_journey`) can be exported as JSONL
    alongside the rest of the telemetry. Pass an existing ``bus`` to
    interleave traces with the fabric's other events; by default each
    tracer gets a private ring sized by ``capacity`` (oldest events are
    evicted).

    Attach with :meth:`attach`; afterwards the network calls
    :meth:`record` on every observable event.
    """

    def __init__(
        self,
        capacity: int = 10_000,
        flows: Optional[Sequence[int]] = None,
        nodes: Optional[Sequence[str]] = None,
        bus: Optional[TelemetryBus] = None,
    ) -> None:
        self.capacity = capacity
        self.flows = flows
        self.nodes = nodes
        self.bus = bus if bus is not None else TelemetryBus(capacity=capacity)

    def attach(self, net: "SimNetwork") -> "PacketTracer":
        net.tracer = self
        return self

    def record(
        self,
        time: float,
        kind: str,
        node: str,
        flow_id: Optional[int] = None,
        packet_id: Optional[int] = None,
        tag: Optional[int] = None,
        detail: str = "",
    ) -> None:
        if self.flows is not None and flow_id not in self.flows:
            return
        if self.nodes is not None and node not in self.nodes:
            return
        self.bus.emit(
            time,
            _TRACE_PREFIX + kind,
            node=node,
            flow=flow_id,
            packet=packet_id,
            tag=tag,
            detail=detail,
        )

    @property
    def events(self) -> List[TraceEvent]:
        """The buffered trace, oldest first."""
        return [
            _from_bus_event(event)
            for event in self.bus.events()
            if event.kind.startswith(_TRACE_PREFIX)
        ]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def packet_journey(self, packet_id: int) -> List[TraceEvent]:
        """All events of one packet, in order — its life story."""
        return [e for e in self.events if e.packet_id == packet_id]

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class QueueSample:
    """One sampled occupancy point."""

    time: float
    switch: str
    port: int
    queue: int
    ingress_bytes: int
    egress_bytes: int
    paused: bool


@dataclass
class QueueSampler:
    """Periodic occupancy sampler for selected (switch, port, queue) spots.

    ``spots`` are ``(switch, in_port_peer_or_port, queue)`` — the port may
    be given as the neighbor's name (resolved once) or a port number.
    """

    net: "SimNetwork"
    spots: Sequence[Tuple[str, object, int]]
    period: float = 0.001
    samples: List[QueueSample] = field(default_factory=list)
    _resolved: List[Tuple[str, int, int]] = field(default_factory=list)
    _installed: bool = False

    def _publish_gauges(self, sample: QueueSample) -> None:
        telemetry = self.net.metrics.telemetry
        if telemetry is None:
            return
        telemetry.registry.gauge(
            "sim_queue_depth_bytes",
            "Egress bytes queued per (switch, port, queue).",
            labelnames=("switch", "port", "queue"),
        ).set(
            sample.egress_bytes,
            switch=sample.switch,
            port=sample.port,
            queue=sample.queue,
        )
        telemetry.registry.gauge(
            "sim_ingress_account_bytes",
            "Ingress PFC account bytes per (switch, port, queue).",
            labelnames=("switch", "port", "queue"),
        ).set(
            sample.ingress_bytes,
            switch=sample.switch,
            port=sample.port,
            queue=sample.queue,
        )

    def install(self) -> None:
        if self._installed:
            return
        self._installed = True
        for switch, port_spec, queue in self.spots:
            if isinstance(port_spec, str):
                port = self.net.topo.port_to(switch, port_spec)
            else:
                port = int(port_spec)  # type: ignore[arg-type]
            self._resolved.append((switch, port, queue))
        self.net.sim.schedule(self.period, self._tick)

    def _tick(self) -> None:
        now = self.net.sim.now
        for switch_name, port, queue in self._resolved:
            switch = self.net.switches[switch_name]
            tx = switch.tx_ports.get(port)
            sample = QueueSample(
                time=now,
                switch=switch_name,
                port=port,
                queue=queue,
                ingress_bytes=switch.accounting.occupancy_of(port, queue),
                egress_bytes=tx.bytes_queued(queue) if tx else 0,
                paused=bool(tx and tx.pause.is_paused(queue)),
            )
            self.samples.append(sample)
            self._publish_gauges(sample)
        self.net.sim.schedule(self.period, self._tick)

    def series(
        self, switch: str, port: int, queue: int
    ) -> List[Tuple[float, int, int, bool]]:
        """(time, ingress_bytes, egress_bytes, paused) for one spot."""
        return [
            (s.time, s.ingress_bytes, s.egress_bytes, s.paused)
            for s in self.samples
            if s.switch == switch and s.port == port and s.queue == queue
        ]

    def peak_ingress(self, switch: str, port: int, queue: int) -> int:
        return max(
            (
                s.ingress_bytes
                for s in self.samples
                if s.switch == switch and s.port == port and s.queue == queue
            ),
            default=0,
        )
