"""DCQCN-style end-to-end congestion control (Zhu et al., SIGCOMM 2015).

The paper's §6 discussion ("PFC alternatives"): schemes like DCQCN
*minimize PFC generation* by slowing senders before buffers reach the
PAUSE threshold — but they are congestion control, not deadlock
prevention, so "Tagger fixes a missing piece of the current RoCE design".
This module implements a simplified-but-faithful DCQCN so that claim can
be measured: marked packets trigger CNPs (on their own traffic class, as
in the paper's multi-class discussion), senders multiplicatively decrease
on CNPs and additively recover on a timer.

Simplifications vs. the full DCQCN spec: single-threshold ECN marking
(no RED probability ramp), rate-based injection instead of byte-counter
stages, and fixed-gain alpha EWMA. These keep the control loop's
character — fast multiplicative backoff, slow recovery, CNP pacing —
without its bookkeeping.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.core.tags import INITIAL_TAG
from repro.exceptions import SimulationError
from repro.simulator.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import SimNetwork

_flow_ids = itertools.count(600_000)

#: CNPs are tiny control frames.
CNP_PACKET_SIZE = 64


@dataclass
class DcqcnParams:
    """Control-loop constants (scaled to the simulator's 1 Gb/s links)."""

    line_rate_bps: float = 1e9
    min_rate_bps: float = 10e6
    cnp_interval: float = 50e-6       # at most one CNP per interval
    alpha_g: float = 0.0625           # alpha EWMA gain
    rate_increase_bps: float = 40e6   # additive increase per timer
    increase_period: float = 1e-3


@dataclass
class DcqcnFlow:
    """One rate-controlled sender.

    Attributes:
        src / dst: Host names.
        data_tag: Traffic class of data packets.
        cnp_tag: Traffic class of CNPs (a separate lossless class per the
            paper's §6 example; defaults to the data class).
    """

    src: str
    dst: str
    packet_size: int = 4096
    data_tag: int = INITIAL_TAG
    cnp_tag: Optional[int] = None
    start: float = 0.0
    stop: Optional[float] = None
    params: DcqcnParams = field(default_factory=DcqcnParams)
    flow_id: int = field(default_factory=lambda: next(_flow_ids))

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise SimulationError("flow src and dst must differ")
        if self.cnp_tag is None:
            self.cnp_tag = self.data_tag
        self.rate = self.params.line_rate_bps
        self._target_rate = self.params.line_rate_bps
        self._alpha = 1.0
        self._last_cnp_sent = -1e9  # receiver-side pacing
        self.cnps_sent = 0
        self.cnps_received = 0
        self._net: Optional["SimNetwork"] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, net: "SimNetwork") -> "DcqcnFlow":
        if self.src not in net.hosts or self.dst not in net.hosts:
            raise SimulationError("unknown DCQCN endpoints")
        self._net = net
        net.transports[self.flow_id] = self
        net.sim.at(self.start, self._inject)
        net.sim.at(self.start + self.params.increase_period, self._increase)
        return self

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------
    def _active(self) -> bool:
        assert self._net is not None
        now = self._net.sim.now
        return now >= self.start and (self.stop is None or now < self.stop)

    def _inject(self) -> None:
        net = self._net
        assert net is not None
        if self.stop is not None and net.sim.now >= self.stop:
            return
        if self._active():
            packet = Packet(
                flow_id=self.flow_id,
                src=self.src,
                dst=self.dst,
                size=self.packet_size,
                tag=self.data_tag,
                ttl=net.config.default_ttl,
                packet_id=net.new_packet_id(),
                created_at=net.sim.now,
                kind="data",
            )
            net.metrics.record_injection(self.flow_id)
            queue = net.host_queue_map.queue_for(self.data_tag)
            nic = net.hosts[self.src].nic
            assert nic is not None
            nic.enqueue(packet, queue)
        interval = self.packet_size * 8.0 / max(self.rate, self.params.min_rate_bps)
        net.sim.schedule(interval, self._inject)

    def _increase(self) -> None:
        net = self._net
        assert net is not None
        if self.stop is not None and net.sim.now >= self.stop:
            return
        # Additive recovery toward (then past) the previous target.
        self.rate = min(
            self.params.line_rate_bps,
            self.rate + self.params.rate_increase_bps,
        )
        net.sim.schedule(self.params.increase_period, self._increase)

    def _on_cnp(self) -> None:
        """Multiplicative decrease, DCQCN-style."""
        self.cnps_received += 1
        self._alpha = (
            (1 - self.params.alpha_g) * self._alpha + self.params.alpha_g
        )
        self._target_rate = self.rate
        self.rate = max(
            self.params.min_rate_bps, self.rate * (1 - self._alpha / 2)
        )

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def _on_data(self, packet: Packet) -> None:
        net = self._net
        assert net is not None
        if not packet.ecn:
            return
        if net.sim.now - self._last_cnp_sent < self.params.cnp_interval:
            return
        self._last_cnp_sent = net.sim.now
        self.cnps_sent += 1
        cnp = Packet(
            flow_id=self.flow_id,
            src=self.dst,
            dst=self.src,
            size=CNP_PACKET_SIZE,
            tag=self.cnp_tag,
            ttl=net.config.default_ttl,
            packet_id=net.new_packet_id(),
            created_at=net.sim.now,
            kind="cnp",
        )
        queue = net.host_queue_map.queue_for(self.cnp_tag)
        nic = net.hosts[self.dst].nic
        assert nic is not None
        nic.enqueue(cnp, queue)

    # ------------------------------------------------------------------
    # Dispatch from SimHost
    # ------------------------------------------------------------------
    def on_delivery(self, packet: Packet, at_host: str) -> None:
        if packet.kind == "data" and at_host == self.dst:
            self._on_data(packet)
        elif packet.kind == "cnp" and at_host == self.src:
            self._on_cnp()
