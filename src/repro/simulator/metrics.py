"""Simulation metrics: flow rates, drops, PFC activity, queue occupancy.

Deliveries are bucketed on the fly (fixed-width time bins), which keeps
memory bounded for long runs while still letting benchmarks plot the
rate-vs-time series the paper's Figs 10-12 show.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.events import (
    EV_SIM_DELIVER,
    EV_SIM_DEMOTE,
    EV_SIM_DROP,
    EV_SIM_INJECT,
)
from repro.obs.instrument import sim_metric_handles
from repro.simulator.pfc import PfcLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry


@dataclass(frozen=True)
class LatencyStats:
    """Summary of per-packet one-way delays (seconds)."""

    count: int
    mean: float
    p50: float
    p99: float
    maximum: float


def _percentile(
    ordered: List[float], fraction: float, name: str = "sample"
) -> float:
    """Nearest-rank percentile of a pre-sorted sample.

    ``name`` identifies the metric in the error raised on an empty
    sample, so callers see *which* series had no data instead of a bare
    "empty sample".
    """
    if not ordered:
        raise ValueError(
            f"cannot compute percentile of metric {name!r}: empty sample"
        )
    rank = max(0, math.ceil(fraction * len(ordered)) - 1)
    return ordered[rank]


#: Drop reasons.
DROP_TTL = "ttl_expired"
DROP_LOSSY = "lossy_overflow"
DROP_LOSSLESS = "lossless_overflow"
DROP_NO_ROUTE = "no_route"
DROP_LINK_DOWN = "link_down"


@dataclass
class MetricsRecorder:
    """Fabric-wide counters and time series for one simulation run."""

    bucket_width: float = 0.001  # seconds
    delivered_bytes: Counter = field(default_factory=Counter)   # flow -> bytes
    delivered_packets: Counter = field(default_factory=Counter)
    injected_packets: Counter = field(default_factory=Counter)
    drops: Counter = field(default_factory=Counter)             # reason -> count
    drops_per_flow: Counter = field(default_factory=Counter)
    pfc: PfcLog = field(default_factory=PfcLog)
    _buckets: Dict[int, Dict[int, int]] = field(
        default_factory=lambda: defaultdict(dict)
    )  # flow -> bucket index -> bytes
    _latencies: Dict[int, List[float]] = field(
        default_factory=lambda: defaultdict(list)
    )  # flow -> per-packet one-way delays (seconds)
    demotions: Counter = field(default_factory=Counter)  # switch -> count
    #: Optional telemetry hookup (see :meth:`attach_telemetry`): when
    #: set, every recorded fact is also published as a structured event
    #: plus a registry counter — same call, same data, so the bus view
    #: reconciles exactly with these counters by construction.
    telemetry: Optional["Telemetry"] = field(default=None, repr=False)
    _handles: Dict[str, Any] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Telemetry hookup
    # ------------------------------------------------------------------
    def attach_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        """Publish every future recording onto ``telemetry`` as well.

        Pure observer: attaching never alters what the recorder itself
        accumulates. Metric handles are cached here so the per-packet
        path performs no registry lookups.
        """
        self.telemetry = telemetry
        if telemetry is None:
            self._handles = {}
            self.pfc.attach_telemetry(None, None)
            return
        self._handles = sim_metric_handles(telemetry.registry)
        self.pfc.attach_telemetry(telemetry, self._handles["pfc"])

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_injection(self, flow_id: int) -> None:
        self.injected_packets[flow_id] += 1
        if self.telemetry is not None:
            self.telemetry.emit(EV_SIM_INJECT, flow=flow_id)
            self._handles["injected"].inc()

    def record_delivery(
        self,
        time: float,
        flow_id: int,
        size: int,
        created_at: Optional[float] = None,
    ) -> None:
        self.delivered_bytes[flow_id] += size
        self.delivered_packets[flow_id] += 1
        bucket = int(time / self.bucket_width)
        flow_buckets = self._buckets[flow_id]
        flow_buckets[bucket] = flow_buckets.get(bucket, 0) + size
        if created_at is not None:
            self._latencies[flow_id].append(time - created_at)
        if self.telemetry is not None:
            self.telemetry.emit(
                EV_SIM_DELIVER, time=time, flow=flow_id, size=size
            )
            self._handles["delivered"].inc()
            self._handles["delivered_bytes"].inc(size)

    def record_drop(self, reason: str, flow_id: Optional[int] = None) -> None:
        self.drops[reason] += 1
        if flow_id is not None:
            self.drops_per_flow[flow_id] += 1
        if self.telemetry is not None:
            self.telemetry.emit(EV_SIM_DROP, reason=reason, flow=flow_id)
            self._handles["dropped"].inc(reason=reason)

    def record_demotion(
        self, time: float, switch: str, old_tag: int, new_tag: int,
        flow_id: Optional[int] = None,
    ) -> None:
        """A rewrite changed a packet's tag (Tagger demotion/promotion)."""
        self.demotions[switch] += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                EV_SIM_DEMOTE,
                time=time,
                switch=switch,
                old_tag=old_tag,
                new_tag=new_tag,
                flow=flow_id,
            )
            self._handles["demotions"].inc(switch=switch)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rate_series(
        self, flow_id: int, start: float = 0.0, end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Per-bucket delivery rate in bits/s as ``(bucket_start, rate)``.

        Buckets with no deliveries appear with rate 0 so deadlocks show as
        a flat zero line rather than a gap.
        """
        flow_buckets = self._buckets.get(flow_id, {})
        if end is None:
            end = (max(flow_buckets) + 1) * self.bucket_width if flow_buckets else start
        first = int(start / self.bucket_width)
        last = int(end / self.bucket_width)
        series = []
        for bucket in range(first, last):
            size = flow_buckets.get(bucket, 0)
            series.append(
                (bucket * self.bucket_width, size * 8.0 / self.bucket_width)
            )
        return series

    def mean_rate(self, flow_id: int, start: float, end: float) -> float:
        """Average delivery rate (bits/s) of a flow over [start, end)."""
        if end <= start:
            return 0.0
        flow_buckets = self._buckets.get(flow_id, {})
        first = int(start / self.bucket_width)
        last = int(end / self.bucket_width)
        total = sum(
            size for bucket, size in flow_buckets.items() if first <= bucket < last
        )
        return total * 8.0 / (end - start)

    def latency_stats(self, flow_id: int) -> Optional["LatencyStats"]:
        """Per-packet one-way delay statistics for a flow (None = no data)."""
        samples = self._latencies.get(flow_id)
        if not samples:
            return None
        ordered = sorted(samples)
        return LatencyStats(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=_percentile(ordered, 0.50, name=f"latency[flow={flow_id}]"),
            p99=_percentile(ordered, 0.99, name=f"latency[flow={flow_id}]"),
            maximum=ordered[-1],
        )

    def total_drops(self, reason: Optional[str] = None) -> int:
        if reason is None:
            return sum(self.drops.values())
        return self.drops.get(reason, 0)

    def summary(self) -> str:
        flows = sorted(self.delivered_bytes)
        lines = [
            f"flows={len(flows)} "
            f"delivered={sum(self.delivered_bytes.values())}B "
            f"drops={dict(self.drops)} "
            f"pauses={self.pfc.pause_count} resumes={self.pfc.resume_count}"
        ]
        return "".join(lines)
