"""Discrete-event RoCE/PFC fabric simulator.

Substitutes for the paper's Arista/Broadcom testbed (§8): per-priority
ingress accounting with XOFF/XON PAUSE generation and headroom, the
3-step Tagger pipeline with correct priority-transition handling, hosts
with PFC-honouring NICs, and runtime deadlock (wait-for cycle) detection.
"""

from repro.simulator.deadlock import (
    OracleSample,
    OracleSampler,
    blocked_queues,
    find_deadlock_cycle,
    is_deadlocked,
    wait_for_graph,
)
from repro.simulator.detection import (
    CLEAR_BROKEN,
    CLEAR_RECOVERED,
    CLEAR_RESUMED,
    ClearEvent,
    DeadlockDetector,
    Detection,
    DetectorConfig,
)
from repro.simulator.engine import (
    SCHEDULERS,
    Simulator,
    WheelSimulator,
    make_simulator,
)
from repro.simulator.flow import Flow, pin_path
from repro.simulator.metrics import (
    DROP_LOSSLESS,
    DROP_LOSSY,
    DROP_NO_ROUTE,
    DROP_TTL,
    MetricsRecorder,
)
from repro.simulator.network import SimNetwork, passthrough_pipeline
from repro.simulator.packet import Packet, SimConfig
from repro.simulator.recovery import (
    DROP_DEADLOCK_RESET,
    DeadlockBreaker,
    RecoveryEvent,
)
from repro.simulator.dcqcn import CNP_PACKET_SIZE, DcqcnFlow, DcqcnParams
from repro.simulator.transport import (
    CONTROL_PACKET_SIZE,
    ReliableMessage,
    TransportStats,
)
from repro.simulator.trace import (
    PacketTracer,
    QueueSample,
    QueueSampler,
    TraceEvent,
)
from repro.simulator.watchdog import DROP_WATCHDOG, PfcWatchdog, StormEvent

__all__ = [
    "Simulator",
    "WheelSimulator",
    "make_simulator",
    "SCHEDULERS",
    "Flow",
    "pin_path",
    "Packet",
    "SimConfig",
    "SimNetwork",
    "passthrough_pipeline",
    "MetricsRecorder",
    "DROP_TTL",
    "DROP_LOSSY",
    "DROP_LOSSLESS",
    "DROP_NO_ROUTE",
    "blocked_queues",
    "wait_for_graph",
    "find_deadlock_cycle",
    "is_deadlocked",
    "OracleSample",
    "OracleSampler",
    "DeadlockDetector",
    "DetectorConfig",
    "Detection",
    "ClearEvent",
    "CLEAR_RESUMED",
    "CLEAR_BROKEN",
    "CLEAR_RECOVERED",
    "DeadlockBreaker",
    "RecoveryEvent",
    "DROP_DEADLOCK_RESET",
    "PfcWatchdog",
    "StormEvent",
    "DROP_WATCHDOG",
    "PacketTracer",
    "TraceEvent",
    "QueueSampler",
    "QueueSample",
    "ReliableMessage",
    "TransportStats",
    "CONTROL_PACKET_SIZE",
    "DcqcnFlow",
    "DcqcnParams",
    "CNP_PACKET_SIZE",
]
