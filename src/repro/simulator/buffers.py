"""Ingress buffer accounting and PFC threshold logic.

PFC is an *ingress* mechanism: a switch counts, per (ingress port,
priority), the bytes currently held for packets that arrived there (the
packets themselves may be waiting in egress queues — they stay charged to
their ingress account until they leave the switch). When an account
crosses XOFF the switch pauses the upstream neighbor for that priority;
when it drains to XON it resumes it. The hard cap (``xoff + headroom``)
models the physically reserved headroom: a lossless packet arriving above
the cap is dropped, which can only happen when PFC is misconfigured —
e.g. the Fig. 8a priority-transition bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.pipeline import LOSSY_QUEUE
from repro.simulator.packet import SimConfig

AccountKey = Tuple[int, int]  # (ingress port, priority queue)


@dataclass
class CrossingResult:
    """What a charge/release did to the PFC state of one account."""

    accepted: bool = True
    send_pause: bool = False
    send_resume: bool = False


@dataclass
class IngressAccounting:
    """Per-switch ingress byte accounting with XOFF/XON detection.

    Two threshold modes:

    - **static** (default): fixed XOFF/XON per account;
    - **dynamic** (``config.dynamic_thresholds``): Broadcom-style alpha
      thresholds — XOFF shrinks as the switch's shared lossless pool
      fills, XON follows at a fixed offset. Under sustained pressure
      every account on the switch pauses earlier and resumes later.
    """

    config: SimConfig
    occupancy: Dict[AccountKey, int] = field(default_factory=dict)
    pause_sent: Dict[AccountKey, bool] = field(default_factory=dict)
    lossless_total: int = 0

    # ------------------------------------------------------------------
    # Thresholds
    # ------------------------------------------------------------------
    def current_xoff(self) -> int:
        """The XOFF threshold in force right now (same for all accounts)."""
        if not self.config.dynamic_thresholds:
            return self.config.xoff_bytes
        free = self.config.shared_buffer_bytes - self.lossless_total
        dynamic = int(self.config.dt_alpha * free)
        return max(
            self.config.dt_floor_bytes, min(self.config.xoff_bytes, dynamic)
        )

    def current_xon(self) -> int:
        if not self.config.dynamic_thresholds:
            return self.config.xon_bytes
        return max(0, self.current_xoff() - self.config.dt_xon_offset_bytes)

    def _cap(self) -> int:
        """Hard per-account cap: current XOFF plus reserved headroom."""
        return self.current_xoff() + self.config.headroom_bytes

    # ------------------------------------------------------------------
    # Charge / release
    # ------------------------------------------------------------------
    def charge(self, port: int, queue: int, size: int) -> CrossingResult:
        """Account an arriving packet; decide drops and PAUSE generation.

        Lossy queues tail-drop at ``lossy_cap_bytes`` and never pause.
        Lossless queues pause upstream at XOFF and drop only beyond the
        headroom cap (a config-error signal, counted by the caller).
        """
        key = (port, queue)
        occ = self.occupancy.get(key, 0)
        result = CrossingResult()
        if queue == LOSSY_QUEUE:
            if occ + size > self.config.lossy_cap_bytes:
                result.accepted = False
                return result
            self.occupancy[key] = occ + size
            return result

        if occ + size > self._cap():
            result.accepted = False
            return result
        self.occupancy[key] = occ + size
        self.lossless_total += size
        if self.occupancy[key] >= self.current_xoff() and not self.pause_sent.get(
            key, False
        ):
            self.pause_sent[key] = True
            result.send_pause = True
        return result

    def release(self, port: int, queue: int, size: int) -> CrossingResult:
        """Release bytes when a packet leaves the switch; maybe RESUME."""
        key = (port, queue)
        occ = self.occupancy.get(key, 0)
        if size > occ:
            raise AssertionError(
                f"ingress accounting underflow on {key}: {occ} - {size}"
            )
        self.occupancy[key] = occ - size
        result = CrossingResult()
        if queue != LOSSY_QUEUE:
            self.lossless_total -= size
            if (
                self.pause_sent.get(key, False)
                and self.occupancy[key] <= self.current_xon()
            ):
                self.pause_sent[key] = False
                result.send_resume = True
        return result

    def occupancy_of(self, port: int, queue: int) -> int:
        return self.occupancy.get((port, queue), 0)

    @property
    def total_bytes(self) -> int:
        return sum(self.occupancy.values())

    def paused_accounts(self) -> Dict[AccountKey, int]:
        """Accounts currently holding an outstanding PAUSE upstream."""
        return {
            key: self.occupancy.get(key, 0)
            for key, sent in self.pause_sent.items()
            if sent
        }
