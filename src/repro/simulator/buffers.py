"""Ingress buffer accounting and PFC threshold logic.

PFC is an *ingress* mechanism: a switch counts, per (ingress port,
priority), the bytes currently held for packets that arrived there (the
packets themselves may be waiting in egress queues — they stay charged to
their ingress account until they leave the switch). When an account
crosses XOFF the switch pauses the upstream neighbor for that priority;
when it drains to XON it resumes it. The hard cap (``xoff + headroom``)
models the physically reserved headroom: a lossless packet arriving above
the cap is dropped, which can only happen when PFC is misconfigured —
e.g. the Fig. 8a priority-transition bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.pipeline import LOSSY_QUEUE
from repro.simulator.packet import SimConfig

try:  # numpy is a declared dependency; degrade gracefully without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on broken installs
    _np = None  # type: ignore[assignment]

AccountKey = Tuple[int, int]  # (ingress port, priority queue)

# Int result codes for the allocation-free fast path (VectorAccounting).
CHARGE_ACCEPT = 0
CHARGE_ACCEPT_PAUSE = 1
CHARGE_REJECT = 2
RELEASE_KEEP = 0
RELEASE_RESUME = 1


@dataclass
class CrossingResult:
    """What a charge/release did to the PFC state of one account."""

    accepted: bool = True
    send_pause: bool = False
    send_resume: bool = False


@dataclass
class IngressAccounting:
    """Per-switch ingress byte accounting with XOFF/XON detection.

    Two threshold modes:

    - **static** (default): fixed XOFF/XON per account;
    - **dynamic** (``config.dynamic_thresholds``): Broadcom-style alpha
      thresholds — XOFF shrinks as the switch's shared lossless pool
      fills, XON follows at a fixed offset. Under sustained pressure
      every account on the switch pauses earlier and resumes later.
    """

    config: SimConfig
    occupancy: Dict[AccountKey, int] = field(default_factory=dict)
    pause_sent: Dict[AccountKey, bool] = field(default_factory=dict)
    lossless_total: int = 0

    # ------------------------------------------------------------------
    # Thresholds
    # ------------------------------------------------------------------
    def current_xoff(self) -> int:
        """The XOFF threshold in force right now (same for all accounts)."""
        if not self.config.dynamic_thresholds:
            return self.config.xoff_bytes
        free = self.config.shared_buffer_bytes - self.lossless_total
        dynamic = int(self.config.dt_alpha * free)
        return max(
            self.config.dt_floor_bytes, min(self.config.xoff_bytes, dynamic)
        )

    def current_xon(self) -> int:
        if not self.config.dynamic_thresholds:
            return self.config.xon_bytes
        return max(0, self.current_xoff() - self.config.dt_xon_offset_bytes)

    def _cap(self) -> int:
        """Hard per-account cap: current XOFF plus reserved headroom."""
        return self.current_xoff() + self.config.headroom_bytes

    # ------------------------------------------------------------------
    # Charge / release
    # ------------------------------------------------------------------
    def charge(self, port: int, queue: int, size: int) -> CrossingResult:
        """Account an arriving packet; decide drops and PAUSE generation.

        Lossy queues tail-drop at ``lossy_cap_bytes`` and never pause.
        Lossless queues pause upstream at XOFF and drop only beyond the
        headroom cap (a config-error signal, counted by the caller).
        """
        key = (port, queue)
        occ = self.occupancy.get(key, 0)
        result = CrossingResult()
        if queue == LOSSY_QUEUE:
            if occ + size > self.config.lossy_cap_bytes:
                result.accepted = False
                return result
            self.occupancy[key] = occ + size
            return result

        if occ + size > self._cap():
            result.accepted = False
            return result
        self.occupancy[key] = occ + size
        self.lossless_total += size
        if self.occupancy[key] >= self.current_xoff() and not self.pause_sent.get(
            key, False
        ):
            self.pause_sent[key] = True
            result.send_pause = True
        return result

    def release(self, port: int, queue: int, size: int) -> CrossingResult:
        """Release bytes when a packet leaves the switch; maybe RESUME."""
        key = (port, queue)
        occ = self.occupancy.get(key, 0)
        if size > occ:
            raise AssertionError(
                f"ingress accounting underflow on {key}: {occ} - {size}"
            )
        self.occupancy[key] = occ - size
        result = CrossingResult()
        if queue != LOSSY_QUEUE:
            self.lossless_total -= size
            if (
                self.pause_sent.get(key, False)
                and self.occupancy[key] <= self.current_xon()
            ):
                self.pause_sent[key] = False
                result.send_resume = True
        return result

    def occupancy_of(self, port: int, queue: int) -> int:
        return self.occupancy.get((port, queue), 0)

    @property
    def total_bytes(self) -> int:
        return sum(self.occupancy.values())

    def paused_accounts(self) -> Dict[AccountKey, int]:
        """Accounts currently holding an outstanding PAUSE upstream."""
        return {
            key: self.occupancy.get(key, 0)
            for key, sent in self.pause_sent.items()
            if sent
        }


class VectorAccounting(IngressAccounting):
    """Flat-indexed drop-in for :class:`IngressAccounting` (fast path).

    Account ``(port, queue)`` lives at index ``port * stride + queue`` in
    flat parallel arrays — no tuple hashing and no dict growth on the
    per-packet path, and the storage doubles as the numpy view the bulk
    queries read (``occupancy_matrix``, ``accounts_over``). Semantics are
    transcribed from the reference, including the dynamic-threshold
    evaluation order (cap computed *before* the charge lands,
    XOFF re-evaluated *after* ``lossless_total`` moves), so both classes
    produce byte-identical decisions — the engine equivalence suite runs
    one fabric on each and diffs the traces.

    The fast switch calls the int-code entry points (:meth:`charge_code`
    / :meth:`release_code`); ``charge``/``release`` wrap them for the
    callers that want a :class:`CrossingResult` (link failure, watchdog,
    recovery).
    """

    def __init__(self, config: SimConfig, stride: int = 16) -> None:
        super().__init__(config)
        # Queue indexes are PFC priorities (0..8 in practice); a
        # power-of-two stride keeps the flat index a shift+add.
        self._stride = stride
        self._occ: List[int] = [0] * (stride * 8)
        self._paused: List[bool] = [False] * (stride * 8)
        # Static-mode thresholds never move; skip the property calls.
        self._static = not config.dynamic_thresholds
        self._xoff = config.xoff_bytes
        self._xon = config.xon_bytes
        self._cap_bytes = config.xoff_bytes + config.headroom_bytes
        self._lossy_cap = config.lossy_cap_bytes
        # Dynamic-mode scalars, cached so the fast switch can evaluate
        # the alpha threshold inline (pure arithmetic, no frames).
        self._headroom = config.headroom_bytes
        self._shared = config.shared_buffer_bytes
        self._alpha = config.dt_alpha
        self._floor = config.dt_floor_bytes
        self._xon_off = config.dt_xon_offset_bytes

    def _grow(self, idx: int) -> None:
        need = idx + 1 - len(self._occ)
        self._occ.extend([0] * need)
        self._paused.extend([False] * need)

    # ------------------------------------------------------------------
    # Fast path (int codes, no allocation)
    # ------------------------------------------------------------------
    def charge_code(self, port: int, queue: int, size: int) -> int:
        idx = port * self._stride + queue
        occ_list = self._occ
        if idx >= len(occ_list):
            self._grow(idx)
        occ = occ_list[idx]
        if queue == LOSSY_QUEUE:
            if occ + size > self._lossy_cap:
                return CHARGE_REJECT
            occ_list[idx] = occ + size
            return CHARGE_ACCEPT
        if self._static:
            if occ + size > self._cap_bytes:
                return CHARGE_REJECT
            occ_list[idx] = occ + size
            self.lossless_total += size
            if occ + size >= self._xoff and not self._paused[idx]:
                self._paused[idx] = True
                return CHARGE_ACCEPT_PAUSE
            return CHARGE_ACCEPT
        # Dynamic thresholds: same call order as the reference — the cap
        # uses the pre-charge pool level, the XOFF test the post-charge
        # level (the charge itself shrinks every account's threshold).
        if occ + size > self.current_xoff() + self.config.headroom_bytes:
            return CHARGE_REJECT
        occ_list[idx] = occ + size
        self.lossless_total += size
        if occ + size >= self.current_xoff() and not self._paused[idx]:
            self._paused[idx] = True
            return CHARGE_ACCEPT_PAUSE
        return CHARGE_ACCEPT

    def release_code(self, port: int, queue: int, size: int) -> int:
        idx = port * self._stride + queue
        occ_list = self._occ
        if idx >= len(occ_list):
            self._grow(idx)
        occ = occ_list[idx]
        if size > occ:
            raise AssertionError(
                f"ingress accounting underflow on {(port, queue)}: {occ} - {size}"
            )
        occ_list[idx] = occ - size
        if queue == LOSSY_QUEUE:
            return RELEASE_KEEP
        self.lossless_total -= size
        if self._paused[idx]:
            xon = self._xon if self._static else self.current_xon()
            if occ - size <= xon:
                self._paused[idx] = False
                return RELEASE_RESUME
        return RELEASE_KEEP

    # ------------------------------------------------------------------
    # Reference-compatible API
    # ------------------------------------------------------------------
    def charge(self, port: int, queue: int, size: int) -> CrossingResult:
        code = self.charge_code(port, queue, size)
        return CrossingResult(
            accepted=code != CHARGE_REJECT,
            send_pause=code == CHARGE_ACCEPT_PAUSE,
        )

    def release(self, port: int, queue: int, size: int) -> CrossingResult:
        code = self.release_code(port, queue, size)
        return CrossingResult(send_resume=code == RELEASE_RESUME)

    def occupancy_of(self, port: int, queue: int) -> int:
        idx = port * self._stride + queue
        if idx >= len(self._occ):
            return 0
        return self._occ[idx]

    @property
    def total_bytes(self) -> int:
        return sum(self._occ)

    def paused_accounts(self) -> Dict[AccountKey, int]:
        stride = self._stride
        return {
            (idx // stride, idx % stride): self._occ[idx]
            for idx, sent in enumerate(self._paused)
            if sent
        }

    # ------------------------------------------------------------------
    # Vectorized bulk views (telemetry / analysis across all accounts)
    # ------------------------------------------------------------------
    def occupancy_matrix(self) -> "_np.ndarray":
        """All accounts as a ``(ports, stride)`` int64 array."""
        if _np is None:  # pragma: no cover - broken-install fallback
            raise RuntimeError("numpy unavailable: occupancy_matrix disabled")
        return _np.asarray(self._occ, dtype=_np.int64).reshape(
            -1, self._stride
        )

    def accounts_over(self, threshold: int) -> List[AccountKey]:
        """Accounts at or above ``threshold`` bytes, ascending key order.

        One vectorized comparison across every account — what the
        observability samplers use instead of a per-account scan.
        """
        stride = self._stride
        if _np is None:  # pragma: no cover - broken-install fallback
            return [
                (idx // stride, idx % stride)
                for idx, occ in enumerate(self._occ)
                if occ >= threshold
            ]
        flat = _np.asarray(self._occ, dtype=_np.int64)
        hits = _np.nonzero(flat >= threshold)[0]
        return [(int(i) // stride, int(i) % stride) for i in hits]
