"""Priority Flow Control state machines.

Two small pieces:

- :class:`PauseState` — per egress port, which priority queues are
  currently paused by the downstream neighbor (set on PAUSE, cleared on
  RESUME).
- :class:`PfcLog` — a counter/log of PFC frames for metrics and for the
  runtime deadlock detector (a deadlocked fabric shows sustained pause
  with zero drain).

PFC frames carry a priority; per the standard, each priority is paused
independently. Queue 0 (lossy) never participates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.pipeline import LOSSY_QUEUE


@dataclass
class PauseState:
    """Pause flags for one egress port (keyed by priority queue index)."""

    paused: Set[int] = field(default_factory=set)

    def pause(self, queue: int) -> None:
        if queue != LOSSY_QUEUE:
            self.paused.add(queue)

    def resume(self, queue: int) -> None:
        self.paused.discard(queue)

    def is_paused(self, queue: int) -> bool:
        return queue in self.paused

    def any_paused(self) -> bool:
        return bool(self.paused)


@dataclass(frozen=True)
class PfcEvent:
    """One PAUSE or RESUME frame observed on a link."""

    time: float
    sender: str       # node that generated the frame (congested receiver)
    receiver: str     # upstream node being paused/resumed
    queue: int
    pause: bool       # True = PAUSE, False = RESUME


@dataclass
class PfcLog:
    """Accumulates PFC frames; queryable per link and per queue."""

    events: List[PfcEvent] = field(default_factory=list)

    def record(
        self, time: float, sender: str, receiver: str, queue: int, pause: bool
    ) -> None:
        self.events.append(PfcEvent(time, sender, receiver, queue, pause))

    @property
    def pause_count(self) -> int:
        return sum(1 for event in self.events if event.pause)

    @property
    def resume_count(self) -> int:
        return sum(1 for event in self.events if not event.pause)

    def pauses_by_link(self) -> Dict[Tuple[str, str], int]:
        out: Dict[Tuple[str, str], int] = {}
        for event in self.events:
            if event.pause:
                key = (event.sender, event.receiver)
                out[key] = out.get(key, 0) + 1
        return out

    def pauses_since(self, time: float) -> int:
        return sum(1 for e in self.events if e.pause and e.time >= time)
