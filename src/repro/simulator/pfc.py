"""Priority Flow Control state machines.

Two small pieces:

- :class:`PauseState` — per egress port, which priority queues are
  currently paused by the downstream neighbor (set on PAUSE, cleared on
  RESUME).
- :class:`PfcLog` — a counter/log of PFC frames for metrics and for the
  runtime deadlock detector (a deadlocked fabric shows sustained pause
  with zero drain).

PFC frames carry a priority; per the standard, each priority is paused
independently. Queue 0 (lossy) never participates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.pipeline import LOSSY_QUEUE
from repro.obs.events import EV_SIM_PAUSE, EV_SIM_RESUME

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import Counter as MetricCounter
    from repro.obs.telemetry import Telemetry


@dataclass
class PauseState:
    """Pause flags for one egress port (keyed by priority queue index)."""

    paused: Set[int] = field(default_factory=set)

    def pause(self, queue: int) -> None:
        if queue != LOSSY_QUEUE:
            self.paused.add(queue)

    def resume(self, queue: int) -> None:
        self.paused.discard(queue)

    def is_paused(self, queue: int) -> bool:
        return queue in self.paused

    def any_paused(self) -> bool:
        return bool(self.paused)


@dataclass(frozen=True)
class PfcEvent:
    """One PAUSE or RESUME frame observed on a link."""

    time: float
    sender: str       # node that generated the frame (congested receiver)
    receiver: str     # upstream node being paused/resumed
    queue: int
    pause: bool       # True = PAUSE, False = RESUME


@dataclass
class PfcLog:
    """Accumulates PFC frames; queryable per link and per queue."""

    events: List[PfcEvent] = field(default_factory=list)
    telemetry: Optional["Telemetry"] = field(default=None, repr=False)
    _frames: Optional["MetricCounter"] = field(default=None, repr=False)
    # Incremental tallies: pause_count/resume_count are polled per tick
    # by the watchdog and the runtime detector, which made the O(events)
    # scans a measurable cost on long pause storms.
    _pauses: int = field(default=0, repr=False)
    _resumes: int = field(default=0, repr=False)

    def attach_telemetry(
        self,
        telemetry: Optional["Telemetry"],
        frames: Optional["MetricCounter"],
    ) -> None:
        """Mirror every future frame onto the bus/registry (pure observer).

        ``record`` is the single choke point all PFC frames pass through
        (``SimNetwork.send_pfc`` routes here), which is what makes the
        bus-side pause/resume counts reconcile exactly with
        :attr:`pause_count`/:attr:`resume_count`.
        """
        self.telemetry = telemetry
        self._frames = frames

    def record(
        self, time: float, sender: str, receiver: str, queue: int, pause: bool
    ) -> None:
        self.events.append(PfcEvent(time, sender, receiver, queue, pause))
        if pause:
            self._pauses += 1
        else:
            self._resumes += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                EV_SIM_PAUSE if pause else EV_SIM_RESUME,
                time=time,
                sender=sender,
                receiver=receiver,
                queue=queue,
            )
            if self._frames is not None:
                self._frames.inc(kind="pause" if pause else "resume")

    @property
    def pause_count(self) -> int:
        return self._pauses

    @property
    def resume_count(self) -> int:
        return self._resumes

    def pauses_by_link(self) -> Dict[Tuple[str, str], int]:
        out: Dict[Tuple[str, str], int] = {}
        for event in self.events:
            if event.pause:
                key = (event.sender, event.receiver)
                out[key] = out.get(key, 0) + 1
        return out

    def pauses_since(self, time: float) -> int:
        return sum(1 for e in self.events if e.pause and e.time >= time)
