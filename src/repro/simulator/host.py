"""Simulated hosts: RDMA-style traffic sources and sinks.

A host owns one NIC port toward its ToR. The NIC honours PFC like a real
RoCE NIC: when the ToR pauses a priority, packets of that priority stop
leaving the host. Closed-loop flows refill their NIC window on every
transmit completion, so PFC back-pressure throttles them exactly as it
would throttle an RDMA sender.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from repro.obs.events import EV_SIM_DELIVER
from repro.simulator.flow import Flow
from repro.simulator.packet import Packet
from repro.simulator.txport import TxPort

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import SimNetwork


class SimHost:
    """One host: flow sources, a PFC-honouring NIC, and a delivery sink.

    The sink models the notorious RoCE failure trigger: a receiver NIC
    that temporarily processes packets slower than line rate (PCIe
    pressure, cache misses) buffers them and, like a real RoCE NIC, sends
    PFC PAUSE to its ToR when its buffer crosses XOFF. The paper's
    production deadlocks form under exactly this kind of transient
    back-pressure — and persist after it abates (§1).
    """

    def __init__(self, net: "SimNetwork", name: str) -> None:
        self.net = net
        self.name = name
        self.nic: Optional[TxPort] = None  # wired by SimNetwork
        self._flows: List[Flow] = []
        self._sent_bytes: Dict[int, int] = {}
        # Receiver-side state (None rate = wire speed, no buffering).
        self._rx_rate_bps: Optional[float] = None
        self._rx_queue: Deque[Packet] = deque()
        self._rx_bytes = 0
        self._rx_draining = False
        self._rx_pause_sent = False

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    def attach_flow(self, flow: Flow) -> None:
        self._flows.append(flow)
        self._sent_bytes[flow.flow_id] = 0
        if flow.closed_loop:
            self.net.sim.at(flow.start, lambda: self._start_closed_loop(flow))
        else:
            self.net.sim.at(flow.start, lambda: self._inject_open_loop(flow))

    def _start_closed_loop(self, flow: Flow) -> None:
        for _ in range(flow.window):
            if not self._inject(flow):
                break

    def _inject_open_loop(self, flow: Flow) -> None:
        if not flow.active_at(self.net.sim.now):
            return
        self._inject(flow)
        assert flow.rate_bps is not None
        interval = flow.packet_size * 8.0 / flow.rate_bps
        self.net.sim.schedule(interval, lambda: self._inject_open_loop(flow))

    def _inject(self, flow: Flow) -> bool:
        """Create one packet and enqueue it at the NIC. False = budget done."""
        if flow.total_bytes is not None and (
            self._sent_bytes[flow.flow_id] + flow.packet_size > flow.total_bytes
        ):
            return False
        if not flow.active_at(self.net.sim.now):
            return False
        packet = Packet(
            flow_id=flow.flow_id,
            src=self.name,
            dst=flow.dst,
            size=flow.packet_size,
            tag=flow.initial_tag,
            ttl=self.net.config.default_ttl,
            packet_id=self.net.new_packet_id(),
            created_at=self.net.sim.now,
        )
        self._sent_bytes[flow.flow_id] += flow.packet_size
        self.net.metrics.record_injection(flow.flow_id)
        queue = self.net.host_queue_map.queue_for(flow.initial_tag)
        assert self.nic is not None, "host NIC not wired"
        self.nic.enqueue(packet, queue)
        return True

    def on_sent(self, packet: Packet) -> None:
        """NIC finished serializing a packet: refill closed-loop windows."""
        for flow in self._flows:
            if flow.flow_id == packet.flow_id and flow.closed_loop:
                jitter = self.net.config.injection_jitter
                if jitter > 0:
                    delay = self.net.rng.uniform(0.0, jitter)
                    self.net.sim.schedule(delay, lambda f=flow: self._inject(f))
                else:
                    self._inject(flow)
                return

    # ------------------------------------------------------------------
    # Sink
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_port: int = 0) -> None:
        if self.net.tracer is not None:
            self.net.tracer.record(
                self.net.sim.now,
                "deliver",
                self.name,
                flow_id=packet.flow_id,
                packet_id=packet.packet_id,
                tag=packet.tag,
            )
        if self._rx_rate_bps is None and not self._rx_queue:
            self._deliver(packet)
            return
        self._rx_queue.append(packet)
        self._rx_bytes += packet.size
        if (
            not self._rx_pause_sent
            and self._rx_bytes >= self.net.config.xoff_bytes
        ):
            # A pressured NIC pauses every lossless priority: its receive
            # buffer is shared, so per-priority selectivity would leak.
            self._rx_pause_sent = True
            for queue in self.net.host_queue_map.lossless_queues():
                self.net.send_pfc(self.name, 0, queue, pause=True)
        if not self._rx_draining:
            self._rx_draining = True
            self._schedule_rx_drain()

    def set_receive_rate(self, rate_bps: Optional[float]) -> None:
        """Throttle (or restore) the receiver's processing rate."""
        self._rx_rate_bps = rate_bps
        if self._rx_queue and not self._rx_draining:
            self._rx_draining = True
            self._schedule_rx_drain()

    def _schedule_rx_drain(self) -> None:
        head = self._rx_queue[0]
        if self._rx_rate_bps is None:
            delay = 0.0
        else:
            delay = head.size * 8.0 / self._rx_rate_bps
        self.net.sim.schedule(delay, self._rx_drain_one)

    def _deliver(self, packet: Packet) -> None:
        """Account a packet as received and hand it to its transport."""
        self.net.metrics.record_delivery(
            self.net.sim.now,
            packet.flow_id,
            packet.size,
            created_at=packet.created_at,
        )
        transport = self.net.transports.get(packet.flow_id)
        if transport is not None:
            transport.on_delivery(packet, self.name)

    def _rx_drain_one(self) -> None:
        packet = self._rx_queue.popleft()
        self._rx_bytes -= packet.size
        self._deliver(packet)
        if (
            self._rx_pause_sent
            and self._rx_bytes <= self.net.config.xon_bytes
        ):
            self._rx_pause_sent = False
            for queue in self.net.host_queue_map.lossless_queues():
                self.net.send_pfc(self.name, 0, queue, pause=False)
        if self._rx_queue:
            self._schedule_rx_drain()
        else:
            self._rx_draining = False

    # ------------------------------------------------------------------
    # PFC from the ToR
    # ------------------------------------------------------------------
    def on_pfc(self, port: int, queue: int, pause: bool) -> None:
        assert self.nic is not None
        if pause:
            self.nic.on_pause(queue)
        else:
            self.nic.on_resume(queue)

    def __repr__(self) -> str:
        return f"SimHost({self.name}, flows={len(self._flows)})"


class FastSimHost(SimHost):
    """Hot-path :class:`SimHost` used by the overhauled engine.

    Behaviour-identical to the reference (the equivalence suite diffs
    full traces), with the per-packet overheads removed: closed-loop
    flows are dispatched from a dict instead of a scan, the per-flow
    injection queue and the config constants are cached at attach time,
    and the unthrottled delivery path is inlined.
    """

    def __init__(self, net: "SimNetwork", name: str) -> None:
        super().__init__(net, name)
        self._closed_by_id: Dict[int, Flow] = {}
        self._flow_queue: Dict[int, int] = {}
        self._ttl = net.config.default_ttl
        self._jitter = net.config.injection_jitter

    def attach_flow(self, flow: Flow) -> None:
        if flow.closed_loop:
            self._closed_by_id[flow.flow_id] = flow
        self._flow_queue[flow.flow_id] = self.net.host_queue_map.queue_for(
            flow.initial_tag
        )
        super().attach_flow(flow)

    def _inject(self, flow: Flow) -> bool:
        if flow.total_bytes is not None and (
            self._sent_bytes[flow.flow_id] + flow.packet_size > flow.total_bytes
        ):
            return False
        net = self.net
        now = net.sim.now
        # flow.active_at, inlined.
        if now < flow.start or (flow.stop is not None and now >= flow.stop):
            return False
        packet = Packet(
            flow.flow_id,
            self.name,
            flow.dst,
            flow.packet_size,
            flow.initial_tag,
            self._ttl,
            net.new_packet_id(),
            now,
        )
        self._sent_bytes[flow.flow_id] += flow.packet_size
        net.metrics.record_injection(flow.flow_id)
        nic = self.nic
        assert nic is not None, "host NIC not wired"
        nic.enqueue(packet, self._flow_queue[flow.flow_id])
        return True

    def on_sent(self, packet: Packet) -> None:
        flow = self._closed_by_id.get(packet.flow_id)
        if flow is None:
            return
        jitter = self._jitter
        if jitter > 0:
            delay = self.net.rng.uniform(0.0, jitter)
            self.net.sim.schedule(delay, lambda f=flow: self._inject(f))
        else:
            self._inject(flow)

    def receive(self, packet: Packet, in_port: int = 0) -> None:
        net = self.net
        if net.tracer is None and self._rx_rate_bps is None and not self._rx_queue:
            # Unthrottled delivery: _deliver and record_delivery both
            # inlined (two frames per delivered packet otherwise).
            metrics = net.metrics
            now = net.sim.now
            flow_id = packet.flow_id
            size = packet.size
            metrics.delivered_bytes[flow_id] += size
            metrics.delivered_packets[flow_id] += 1
            bucket = int(now / metrics.bucket_width)
            flow_buckets = metrics._buckets[flow_id]
            flow_buckets[bucket] = flow_buckets.get(bucket, 0) + size
            created_at = packet.created_at
            if created_at is not None:
                metrics._latencies[flow_id].append(now - created_at)
            if metrics.telemetry is not None:
                metrics.telemetry.emit(
                    EV_SIM_DELIVER, time=now, flow=flow_id, size=size
                )
                metrics._handles["delivered"].inc()
                metrics._handles["delivered_bytes"].inc(size)
            transport = net.transports.get(flow_id)
            if transport is not None:
                transport.on_delivery(packet, self.name)
            return
        super().receive(packet, in_port)
