"""Discrete-event simulation core.

Two interchangeable event loops share one scheduling contract — events
are ``(time, seq, callback)`` triples, popped in ``(time, seq)`` order so
same-time events run FIFO in schedule order (deterministic runs):

- :class:`Simulator` — the frozen *reference* engine: a single binary
  heap, one ``heappush``/``heappop`` per event. Simple, obviously
  correct, and the yardstick every optimization is differentially
  tested against (``tests/simulator/test_engine_equivalence.py``).
- :class:`WheelSimulator` — the overhauled engine: a slotted event
  wheel (calendar queue). Near-future events land in a rotating ring of
  per-slot buckets (append-only, no heap discipline until their slot
  activates); far-future events overflow into a heap and migrate into
  the ring as the horizon advances. Scheduling is O(1) for the common
  case and the active-slot heaps stay tiny, which is what the
  million-packet pause-storm workloads need.

The sequence counter is explicit per-engine state (``self._seq``), not a
shared module-level iterator: two engines constructed in one process
schedule identically, which the differential trace-equivalence suite
relies on when it runs a reference and a wheel fabric side by side.

All simulator components share one engine instance and schedule work
through it. Use :func:`make_simulator` to pick the implementation by
name (``"heap"`` or ``"wheel"``).
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from repro.exceptions import SimulationError

Callback = Callable[[], None]

#: One scheduled event. ``seq`` is unique per engine, so comparisons
#: never reach the (uncomparable) callback.
Event = Tuple[float, int, Callback]

#: Engine implementations selectable by name.
SCHEDULERS = ("heap", "wheel")

#: Default wheel geometry: 1 us slots covering a ~4 ms rotating horizon.
#: PFC/propagation delays are a few microseconds and serialization a few
#: tens, so the active slot holds a handful of events; periodic pollers
#: (watchdog, detectors, samplers) land in the overflow heap and migrate
#: lazily.
WHEEL_RESOLUTION = 1e-6
WHEEL_SLOTS = 4096


class Simulator:
    """The reference event loop: a clock plus a priority queue."""

    # Slots (here and on the wheel subclass) keep attribute access off
    # the instance-dict path — the run loop touches engine state on
    # every one of the millions of events a campaign dispatches.
    __slots__ = ("now", "_heap", "_seq", "_events_run", "_stopped")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        #: Explicit per-run tie-break state. Same-time events pop in the
        #: order they were scheduled; keeping the counter as plain
        #: instance state (rather than an opaque iterator) pins the fact
        #: that nothing outside this engine can perturb its ordering.
        self._seq: int = 0
        self._events_run = 0
        self._stopped = False

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self.at(self.now + delay, callback)

    def at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute ``time`` (``>= now``)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, callback))

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the horizon / event budget / empty heap.

        Returns the number of events processed in this call. The clock is
        left at ``until`` (if given and reached) or at the last event time.
        """
        processed = 0
        self._stopped = False
        while self._heap and not self._stopped:
            time, _, callback = self._heap[0]
            if until is not None and time > until:
                break
            heappop(self._heap)
            self.now = time
            callback()
            processed += 1
            self._events_run += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and self.now < until and not self._heap:
            self.now = until
        elif until is not None and self._heap and self._heap[0][0] > until:
            self.now = until
        return processed

    def stop(self) -> None:
        """Abort :meth:`run` after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def total_events_run(self) -> int:
        return self._events_run


class WheelSimulator(Simulator):
    """Calendar-queue engine: byte-identical schedules, less queue work.

    Slot ``s`` covers absolute times ``[s * resolution, (s+1) *
    resolution)``; the ring holds slots ``(cur, cur + slots)``, the
    active slot's events live in a sorted list walked by a cursor, and
    everything beyond the horizon waits in an overflow heap. Bucketing
    uses ``int(time / resolution)``, which is monotone in ``time`` (IEEE
    division is correctly rounded, truncation is monotone for
    non-negatives), so bucket order can never contradict ``(time, seq)``
    order — the equivalence suite's byte-identity rests on that.

    The active slot is a *sorted list*, not a heap: slot loads sort once
    (same-time bursts arrive already in seq order, so timsort is
    near-linear) and each event is a list index instead of a
    ``heappop``; events scheduled into the live slot mid-run are
    ``insort``-ed past the cursor.
    """

    __slots__ = (
        "_res", "_nslots", "_ring", "_ring_count", "_cur_slot",
        "_active", "_active_pos", "_overflow", "_stop_stash",
        "_slot_heap",
    )

    def __init__(
        self,
        resolution: float = WHEEL_RESOLUTION,
        slots: int = WHEEL_SLOTS,
    ) -> None:
        super().__init__()
        if resolution <= 0:
            raise SimulationError(f"wheel resolution must be positive: {resolution}")
        if slots < 2:
            raise SimulationError(f"wheel needs at least 2 slots: {slots}")
        self._res = resolution
        self._nslots = slots
        self._ring: List[List[Event]] = [[] for _ in range(slots)]
        self._ring_count = 0
        #: Min-heap of absolute slot numbers whose ring cell is
        #: non-empty (pushed on the empty-to-occupied transition, popped
        #: when the cell is drained). Lets the refill jump straight to
        #: the next occupied slot instead of scanning empty cells —
        #: sparse schedules (pause-storm incast) otherwise spend more
        #: time scanning than running events.
        self._slot_heap: List[int] = []
        self._cur_slot = 0
        self._active: List[Event] = []
        self._active_pos = 0
        self._overflow: List[Event] = []
        #: Events :meth:`stop` clipped off the active slot so the hot
        #: drain loop exhausts without a per-event halt check; restored
        #: (merge-sorted with any events scheduled meanwhile) before the
        #: next run or on exit.
        self._stop_stash: List[Event] = []

    def schedule(self, delay: float, callback: Callback) -> None:
        # ``at`` inlined: two schedules per packet-hop make this the
        # hottest call in the simulator, and the extra frame shows up in
        # million-packet runs.
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        event = (time, seq, callback)
        slot = int(time / self._res)
        cur = self._cur_slot
        if slot <= cur:
            insort(self._active, event, self._active_pos)
        elif slot < cur + self._nslots:
            cell = self._ring[slot % self._nslots]
            if not cell:
                heappush(self._slot_heap, slot)
            cell.append(event)
            self._ring_count += 1
        else:
            heappush(self._overflow, event)

    def at(self, time: float, callback: Callback) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = (time, seq, callback)
        slot = int(time / self._res)
        cur = self._cur_slot
        if slot <= cur:
            insort(self._active, event, self._active_pos)
        elif slot < cur + self._nslots:
            cell = self._ring[slot % self._nslots]
            if not cell:
                heappush(self._slot_heap, slot)
            cell.append(event)
            self._ring_count += 1
        else:
            heappush(self._overflow, event)

    def _refill_active(self) -> bool:
        """Advance to the next occupied slot; load it into the active list.

        Returns False when no events remain anywhere.
        """
        if self._ring_count == 0 and not self._overflow:
            return False
        ring, nslots, res = self._ring, self._nslots, self._res
        slot_heap = self._slot_heap
        # The slot heap tracks every occupied ring cell, so the next
        # ring slot is its head — no empty-cell scan.
        ring_slot: Optional[int] = slot_heap[0] if self._ring_count else None
        overflow = self._overflow
        if overflow:
            over_slot: Optional[int] = int(overflow[0][0] / res)
        else:
            over_slot = None
        if over_slot is not None and (ring_slot is None or over_slot < ring_slot):
            new_cur = over_slot
        else:
            assert ring_slot is not None
            new_cur = ring_slot
        self._cur_slot = new_cur
        active: List[Event] = []
        # Migrate overflow events the advanced horizon now covers.
        if overflow:
            horizon_time = (new_cur + nslots) * res
            while overflow and overflow[0][0] < horizon_time:
                event = heappop(overflow)
                slot = int(event[0] / res)
                if slot <= new_cur:
                    active.append(event)
                else:
                    cell = ring[slot % nslots]
                    if not cell:
                        heappush(slot_heap, slot)
                    cell.append(event)
                    self._ring_count += 1
        # Gather the chosen slot plus nearby occupied slots into one
        # active list: a single sort amortizes over more events and the
        # drain loop restarts less often. Safe because every occupied
        # cell at or below the advanced cursor is drained right here
        # (so a ring cell a future schedule() call may reuse is always
        # empty), and the overflow heap only holds events beyond the
        # pre-batch horizon, so nothing can sort ahead of a gathered
        # slot.
        limit = new_cur + 64
        while slot_heap and slot_heap[0] <= limit and len(active) < 128:
            gathered = heappop(slot_heap)
            bucket = ring[gathered % nslots]
            active.extend(bucket)
            self._ring_count -= len(bucket)
            del bucket[:]
            new_cur = gathered
        if new_cur > self._cur_slot:
            self._cur_slot = new_cur
        active.sort()
        self._active = active
        self._active_pos = 0
        return bool(active) or self._refill_active()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        start_events = self._events_run
        self._stopped = False
        if self._stop_stash:
            self._restore_stash()
        res = self._res
        done = False
        while not done:
            if self._stopped:
                break
            active = self._active
            pos = self._active_pos
            if pos >= len(active):
                if not self._refill_active():
                    break
                active = self._active
                pos = 0
            if max_events is None and (
                until is None or (self._cur_slot + 2) * res <= until
            ):
                # Hot drain: every event left in this slot runs (slot
                # times are below ``(cur+1) * res``, a whole slot under
                # the horizon — the +2 absorbs float rounding). The
                # C-level list iterator sees events ``insort``-ed into
                # the live slot mid-drain (they land past the cursor,
                # since their time is >= now), and :meth:`stop` clips
                # the tail so the iterator exhausts — so the loop body
                # carries no halt/horizon/budget checks at all.
                it = iter(active)
                for _ in range(pos):
                    next(it)
                er = self._events_run
                for event in it:
                    pos += 1
                    # Cursor stays honest before each callback: nested
                    # same-slot schedules insort past this position.
                    self._active_pos = pos
                    self.now = event[0]
                    event[2]()
                    er += 1
                    self._events_run = er
                continue
            # Careful drain: the horizon lies inside (or within float
            # rounding of) this slot, or an event budget applies.
            size = len(active)
            er = self._events_run
            while pos < size:
                event = active[pos]
                time = event[0]
                if until is not None and time > until:
                    done = True
                    break
                pos += 1
                self._active_pos = pos
                self.now = time
                event[2]()
                size = len(active)
                er += 1
                self._events_run = er
                if self._stopped:
                    break
                if (
                    max_events is not None
                    and er - start_events >= max_events
                ):
                    done = True
                    break
        if self._stop_stash:
            self._restore_stash()
        if until is not None:
            if self._active_pos >= len(self._active) and not self._refill_active():
                if self.now < until:
                    self.now = until
            elif self._active[self._active_pos][0] > until:
                self.now = until
        return self._events_run - start_events

    def stop(self) -> None:
        """Abort :meth:`run` after the current event.

        Clips the unconsumed tail of the active slot into a stash so the
        hot drain loop (which carries no per-event halt check) exhausts
        naturally; the stash is merged back before the run returns.
        """
        self._stopped = True
        active = self._active
        pos = self._active_pos
        if pos < len(active):
            self._stop_stash.extend(active[pos:])
            del active[pos:]

    def _restore_stash(self) -> None:
        """Merge stop-clipped events back into the active slot."""
        stash = self._stop_stash
        self._stop_stash = []
        active = self._active
        pos = self._active_pos
        active.extend(stash)
        # Events scheduled while clipped insorted into the shortened
        # list; one tail sort restores global (time, seq) order.
        tail = active[pos:]
        tail.sort()
        active[pos:] = tail

    @property
    def pending_events(self) -> int:
        return (
            len(self._active)
            - self._active_pos
            + len(self._stop_stash)
            + self._ring_count
            + len(self._overflow)
        )


def make_simulator(
    scheduler: str = "heap",
    resolution: float = WHEEL_RESOLUTION,
    slots: int = WHEEL_SLOTS,
) -> Simulator:
    """Build an engine by name: ``"heap"`` (reference) or ``"wheel"``."""
    if scheduler == "heap":
        return Simulator()
    if scheduler == "wheel":
        return WheelSimulator(resolution=resolution, slots=slots)
    raise SimulationError(
        f"unknown scheduler {scheduler!r}; choose from {', '.join(SCHEDULERS)}"
    )
