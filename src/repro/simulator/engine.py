"""Discrete-event simulation core.

A minimal, fast event loop: events are ``(time, seq, callback)`` triples
in a binary heap; ``seq`` breaks ties FIFO so same-time events run in
schedule order (deterministic runs). All simulator components share one
:class:`Simulator` instance and schedule work through it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.exceptions import SimulationError

Callback = Callable[[], None]


class Simulator:
    """The event loop: a clock plus a priority queue of callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callback]] = []
        self._seq = itertools.count()
        self._events_run = 0
        self._stopped = False

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self.at(self.now + delay, callback)

    def at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute ``time`` (``>= now``)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the horizon / event budget / empty heap.

        Returns the number of events processed in this call. The clock is
        left at ``until`` (if given and reached) or at the last event time.
        """
        processed = 0
        self._stopped = False
        while self._heap and not self._stopped:
            time, _, callback = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self.now = time
            callback()
            processed += 1
            self._events_run += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and self.now < until and not self._heap:
            self.now = until
        elif until is not None and self._heap and self._heap[0][0] > until:
            self.now = until
        return processed

    def stop(self) -> None:
        """Abort :meth:`run` after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def total_events_run(self) -> int:
        return self._events_run
