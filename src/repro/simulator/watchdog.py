"""PFC watchdog — the mitigation production fabrics actually deploy.

Switch vendors ship a *PFC storm watchdog*: per egress queue, if the
queue has been continuously paused (and non-empty) longer than a
detection window, the switch assumes a pause storm or deadlock and starts
discarding that queue's packets until the pause clears. It needs no
global view — and that is also its weakness: it cannot tell a deadlock
from an innocent long pause (e.g. a slow receiver NIC), so it destroys
lossless traffic in situations Tagger rides through unharmed.

Like :class:`~repro.simulator.recovery.DeadlockBreaker`, this is a
baseline for comparison, not part of Tagger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.pipeline import LOSSY_QUEUE
from repro.obs.events import EV_SIM_WATCHDOG

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.detect.arbiter import RecoveryArbiter
    from repro.simulator.network import SimNetwork

#: Owner name the watchdog uses when an arbiter mediates recovery.
WATCHDOG_OWNER = "watchdog"

#: Drop reason recorded for packets discarded by the watchdog.
DROP_WATCHDOG = "pfc_watchdog"

QueueKey = Tuple[str, int, int]  # (switch, out_port, queue)


@dataclass(frozen=True)
class StormEvent:
    """One watchdog trigger."""

    time: float
    switch: str
    port: int
    queue: int
    packets_dropped: int


@dataclass
class PfcWatchdog:
    """Per-queue pause-storm watchdog.

    Attributes:
        net: The fabric to monitor.
        detection_time: Continuous paused-and-backlogged duration that
            triggers the watchdog for a queue.
        poll: Scan period.
        rearm_base: Hold-off before a queue whose storm episode just
            ended may trigger again. ``0.0`` (default) re-arms
            immediately — the historical behavior. Each further episode
            on the same queue multiplies the hold-off by
            ``rearm_multiplier`` (capped at ``rearm_max``), so a queue
            that storms over and over backs off instead of re-triggering
            every poll tick.
        arbiter: Optional single-recovery-owner arbiter shared with the
            detector-driven quarantine
            (:class:`repro.detect.RecoveryArbiter`). When set, the
            watchdog only discards a queue it can acquire, and holds
            ownership for the storm episode — so a queue the detector
            already quarantined is never double-demoted, and vice versa.
        events: Log of storms (first trigger per episode; while an
            episode persists, subsequent drained packets are added to
            drops but not logged as new events).
    """

    net: "SimNetwork"
    detection_time: float = 0.02
    poll: float = 0.005
    rearm_base: float = 0.0
    rearm_multiplier: float = 2.0
    rearm_max: float = 1.0
    arbiter: Optional["RecoveryArbiter"] = None
    arbitration_skips: int = 0
    events: List[StormEvent] = field(default_factory=list)
    _stalled_since: Dict[QueueKey, float] = field(default_factory=dict)
    _storming: Dict[QueueKey, bool] = field(default_factory=dict)
    _episodes: Dict[QueueKey, int] = field(default_factory=dict)
    _rearm_until: Dict[QueueKey, float] = field(default_factory=dict)
    _installed: bool = False

    def install(self) -> None:
        if self._installed:
            return
        self._installed = True
        self.net.sim.schedule(self.poll, self._tick)

    def rearm_delay(self, episode: int) -> float:
        """Hold-off after the ``episode``-th completed storm (1-based)."""
        if self.rearm_base <= 0.0 or episode < 1:
            return 0.0
        return min(
            self.rearm_max,
            self.rearm_base * (self.rearm_multiplier ** (episode - 1)),
        )

    def _tick(self) -> None:
        now = self.net.sim.now
        for switch_name, switch in self.net.switches.items():
            for port, tx in switch.tx_ports.items():
                for queue in list(tx.queues):
                    if queue == LOSSY_QUEUE:
                        continue
                    key = (switch_name, port, queue)
                    if not tx.pause.is_paused(queue):
                        if self._storming.pop(key, None):
                            # Episode over: schedule the re-arm hold-off.
                            count = self._episodes.get(key, 0) + 1
                            self._episodes[key] = count
                            self._rearm_until[key] = now + self.rearm_delay(
                                count
                            )
                            if self.arbiter is not None:
                                self.arbiter.release(
                                    switch_name, queue, WATCHDOG_OWNER
                                )
                        continue
                    if now < self._rearm_until.get(key, 0.0):
                        continue
                    # True continuous pause duration, not poll sampling:
                    # ordinary congestion toggles pause every few hundred
                    # microseconds and never accumulates a long episode.
                    if tx.paused_duration(queue) < self.detection_time:
                        continue
                    if tx.depth(queue) == 0:
                        continue
                    if self.arbiter is not None and not self.arbiter.acquire(
                        switch_name, queue, WATCHDOG_OWNER
                    ):
                        # Another recovery (detector quarantine) owns
                        # this queue: skip, don't double-demote.
                        self.arbitration_skips += 1
                        continue
                    dropped = self._discard(switch_name, tx, queue)
                    if dropped and not self._storming.get(key, False):
                        self._storming[key] = True
                        self.events.append(
                            StormEvent(
                                time=now,
                                switch=switch_name,
                                port=port,
                                queue=queue,
                                packets_dropped=dropped,
                            )
                        )
                        telemetry = self.net.metrics.telemetry
                        if telemetry is not None:
                            telemetry.emit(
                                EV_SIM_WATCHDOG,
                                time=now,
                                switch=switch_name,
                                port=port,
                                queue=queue,
                                dropped=dropped,
                            )
                            self.net.metrics._handles["watchdog"].inc()
        self.net.sim.schedule(self.poll, self._tick)

    def _discard(self, switch_name: str, tx, queue: int) -> int:
        switch = self.net.switches[switch_name]
        fifo = tx.queues.get(queue)
        dropped = 0
        while fifo:
            packet = fifo.popleft()
            tx.queued_bytes[queue] -= packet.size
            self.net.metrics.record_drop(DROP_WATCHDOG, packet.flow_id)
            crossing = switch.accounting.release(
                packet.in_port, packet.in_queue, packet.size
            )
            if crossing.send_resume:
                self.net.send_pfc(
                    switch_name, packet.in_port, packet.in_queue, pause=False
                )
            dropped += 1
        return dropped

    @property
    def storms(self) -> int:
        return len(self.events)

    @property
    def total_dropped(self) -> int:
        return self.net.metrics.drops.get(DROP_WATCHDOG, 0)
