"""Simulation assembly: topology + routing + Tagger plan -> running fabric.

:class:`SimNetwork` instantiates a :class:`SimSwitch` per switch and a
:class:`SimHost` per host, wires a :class:`TxPort` onto every directed
link, and exposes the experiment API the benchmarks drive:

- ``add_flow`` / ``at`` (scheduled mutations, e.g. "install a bad route
  at t = 20 s");
- ``run(until)``;
- ``metrics`` (rates, drops, PFC activity) and deadlock probes.

Switches run the paper's 3-step pipeline when given a
:class:`TaggerPlan`; without one they run plain PFC on a single lossless
priority (the paper's "without Tagger" baseline).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.core.pipeline import PipelineConfig, QueueMap
from repro.core.planner import TaggerPlan
from repro.core.rules import RuleTable
from repro.exceptions import SimulationError
from repro.routing.base import ForwardingTable
from repro.simulator.engine import Simulator, make_simulator
from repro.simulator.flow import Flow
from repro.simulator.host import FastSimHost, SimHost
from repro.simulator.metrics import MetricsRecorder
from repro.simulator.packet import SimConfig
from repro.simulator.switch import FastSimSwitch, SimSwitch
from repro.simulator.txport import FastTxPort, TxPort
from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry


def passthrough_pipeline(num_lossless_tags: int = 1) -> PipelineConfig:
    """Plain PFC, no Tagger: tags pass through unchanged, tag = queue.

    This is the baseline the paper's "without Tagger" experiments run:
    every lossless packet stays in its priority for its whole life, so
    bounces and loops can form CBDs.
    """
    keep_tag = lambda switch, in_port, out_port, tag: tag  # noqa: E731
    return PipelineConfig(
        rule_table=RuleTable(switch="*", policy=keep_tag),
        queue_map=QueueMap.identity(num_lossless_tags),
        decouple_egress=True,
    )


class SimNetwork:
    """A fully wired simulated fabric."""

    def __init__(
        self,
        topo: Topology,
        table: ForwardingTable,
        pipelines: Optional[Dict[str, PipelineConfig]] = None,
        config: SimConfig = SimConfig(),
        host_queue_map: Optional[QueueMap] = None,
        metrics_bucket: float = 0.001,
        telemetry: Optional["Telemetry"] = None,
        engine: str = "wheel",
    ) -> None:
        self.topo = topo
        self.table = table
        self.config = config
        #: ``engine="wheel"`` (default) runs the event-wheel scheduler
        #: with the fast switch/port/accounting classes; ``"heap"`` runs
        #: the frozen reference stack. Both produce byte-identical
        #: traces, PFC logs and metrics (tests/simulator/
        #: test_engine_equivalence.py) — "heap" exists as the yardstick.
        self.engine = engine
        self.sim: Simulator = make_simulator(engine)
        self.rng = random.Random(config.seed)
        self._next_packet_id = 0
        self.metrics = MetricsRecorder(bucket_width=metrics_bucket)
        self.telemetry = telemetry
        if telemetry is not None:
            # Events from this fabric are stamped with simulated time.
            telemetry.bind_clock(lambda: self.sim.now)
            self.metrics.attach_telemetry(telemetry)
        default_pipeline = passthrough_pipeline()
        self._pipelines = pipelines or {}
        self.host_queue_map = host_queue_map or default_pipeline.queue_map
        self._pinned: Dict[int, Tuple[Optional[str], Dict[str, str]]] = {}
        #: Bumped on every (re)pin; the fast switches key their cached
        #: forwarding decisions on it (see FastSimSwitch).
        self._pinned_version = 0
        self.tracer = None  # optional PacketTracer (see simulator.trace)
        self.transports: Dict[int, object] = {}  # flow_id -> ReliableMessage
        #: Control-path taps called for every PFC frame sent (the runtime
        #: deadlock detector registers here; see simulator.detection).
        self.pfc_observers: List[Callable[[str, int, int, bool], None]] = []
        #: Egress queues (switch, out_port, queue) under recovery
        #: quarantine: traffic headed for them is demoted to lossy at the
        #: owning switch until recovery re-arms the queue.
        self.quarantined: Set[Tuple[str, int, int]] = set()

        # The wheel engine rides with the fast switch/port classes; the
        # heap reference keeps the frozen naive stack.
        switch_cls = SimSwitch if engine == "heap" else FastSimSwitch
        host_cls = SimHost if engine == "heap" else FastSimHost
        self._port_cls = TxPort if engine == "heap" else FastTxPort
        self.switches: Dict[str, SimSwitch] = {}
        self.hosts: Dict[str, SimHost] = {}
        for name in topo.switches:
            pipeline = self._pipelines.get(name, default_pipeline)
            self.switches[name] = switch_cls(self, name, pipeline)
        for name in topo.hosts:
            self.hosts[name] = host_cls(self, name)
        self._wire_ports()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def with_plan(
        topo: Topology,
        table: ForwardingTable,
        plan: TaggerPlan,
        config: SimConfig = SimConfig(),
        decouple_egress: bool = True,
        metrics_bucket: float = 0.001,
        telemetry: Optional["Telemetry"] = None,
        engine: str = "wheel",
    ) -> "SimNetwork":
        """Build a fabric running a :class:`TaggerPlan` on every switch."""
        pipelines = {
            switch: plan.pipeline_config(switch, decouple_egress=decouple_egress)
            for switch in topo.switches
        }
        return SimNetwork(
            topo,
            table,
            pipelines=pipelines,
            config=config,
            host_queue_map=plan.queue_map,
            metrics_bucket=metrics_bucket,
            telemetry=telemetry,
            engine=engine,
        )

    def _wire_ports(self) -> None:
        for link in self.topo.iter_links(include_failed=True):
            self._wire_direction(link.a, link.port_a, link.b, link.port_b)
            self._wire_direction(link.b, link.port_b, link.a, link.port_a)

    def _wire_direction(
        self, src: str, src_port: int, dst: str, dst_port: int
    ) -> None:
        dst_node = self.topo.node(dst)
        if dst_node.is_switch:
            receive = self.switches[dst].receive
        else:
            receive = self.hosts[dst].receive
        deliver = lambda pkt, r=receive, p=dst_port: r(pkt, p)  # noqa: E731

        src_node = self.topo.node(src)
        if src_node.is_switch:
            switch = self.switches[src]
            port = self._port_cls(
                self.sim,
                self.config,
                owner=src,
                port=src_port,
                peer=dst,
                deliver=deliver,
                on_sent=switch.on_sent,
            )
            switch.tx_ports[src_port] = port
        else:
            host = self.hosts[src]
            port = self._port_cls(
                self.sim,
                self.config,
                owner=src,
                port=src_port,
                peer=dst,
                deliver=deliver,
                on_sent=host.on_sent,
            )
            host.nic = port
        if isinstance(port, FastTxPort):
            port.bind_receiver(receive, dst_port)
            if src_node.is_switch and isinstance(switch, FastSimSwitch):
                # Fuse the per-transmit ingress release into the port.
                port.bind_sender(switch._acct, self.send_pfc)

    def new_packet_id(self) -> int:
        """Next packet id for this fabric (per-network, not per-process)."""
        pid = self._next_packet_id
        self._next_packet_id = pid + 1
        return pid

    # ------------------------------------------------------------------
    # Experiment API
    # ------------------------------------------------------------------
    def add_flow(self, flow: Flow) -> Flow:
        if flow.src not in self.hosts:
            raise SimulationError(f"unknown source host {flow.src!r}")
        if flow.dst not in self.hosts:
            raise SimulationError(f"unknown destination host {flow.dst!r}")
        if flow.pinned_next_hops:
            self.pin_flow(flow.flow_id, flow.pinned_next_hops, dst=flow.dst)
        self.hosts[flow.src].attach_flow(flow)
        return flow

    def pin_flow(
        self,
        flow_id: int,
        next_hops: Dict[str, str],
        dst: Optional[str] = None,
    ) -> None:
        """(Re)pin a flow's path.

        With ``dst`` given, the pin applies only to packets addressed to
        that destination — reverse-direction packets of the same flow
        (transport ACKs) follow the normal tables instead of being bent
        onto the forward path.
        """
        self._pinned[flow_id] = (dst, dict(next_hops))
        self._pinned_version += 1

    def pinned_next_hop(
        self, flow_id: int, switch: str, dst: Optional[str] = None
    ) -> Optional[str]:
        entry = self._pinned.get(flow_id)
        if entry is None:
            return None
        pin_dst, mapping = entry
        if pin_dst is not None and dst is not None and dst != pin_dst:
            return None
        return mapping.get(switch)

    def at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule a mutation (table edit, link failure, ...) at ``time``."""
        self.sim.at(time, action)

    def set_receiver_rate(self, host: str, rate_bps: Optional[float]) -> None:
        """Throttle (rate in bit/s) or restore (None) a host's receiver."""
        self.hosts[host].set_receive_rate(rate_bps)

    def fail_link(self, a: str, b: str) -> int:
        """Physically fail a switch-to-switch link mid-simulation.

        Both directions stop transmitting; packets queued on the dead
        ports are lost (counted as ``link_down`` drops) and their PFC
        accounts released, exactly as a real port-down event discards the
        egress queue. Returns the number of packets lost. Routing is NOT
        touched — compose with table edits / local reroute / convergence
        to model the control-plane reaction.
        """
        from repro.simulator.metrics import DROP_LINK_DOWN

        self.topo.fail_link(a, b)
        lost = 0
        for src, dst in ((a, b), (b, a)):
            if src not in self.switches:
                continue  # host NICs: flows stall, nothing to discard
            switch = self.switches[src]
            port = self.topo.port_to(src, dst)
            tx = switch.tx_ports[port]
            tx.set_link_state(False)
            for packet in tx.drain_all():
                self.metrics.record_drop(DROP_LINK_DOWN, packet.flow_id)
                crossing = switch.accounting.release(
                    packet.in_port, packet.in_queue, packet.size
                )
                if crossing.send_resume:
                    self.send_pfc(
                        src, packet.in_port, packet.in_queue, pause=False
                    )
                lost += 1
        return lost

    def restore_link(self, a: str, b: str) -> None:
        """Bring a previously failed link back up."""
        self.topo.restore_link(a, b)
        for src, dst in ((a, b), (b, a)):
            if src in self.switches:
                port = self.topo.port_to(src, dst)
                self.switches[src].tx_ports[port].set_link_state(True)

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def send_pfc(self, sender: str, in_port: int, queue: int, pause: bool) -> None:
        """Deliver a PAUSE/RESUME from ``sender`` to its upstream neighbor."""
        upstream = self.topo.peer_on_port(sender, in_port)
        self.metrics.pfc.record(self.sim.now, sender, upstream, queue, pause)
        if self.tracer is not None:
            from repro.simulator.trace import EV_PAUSE, EV_RESUME

            self.tracer.record(
                self.sim.now,
                EV_PAUSE if pause else EV_RESUME,
                sender,
                tag=queue,
                detail=f"-> {upstream}",
            )
        upstream_node = self.topo.node(upstream)
        if upstream_node.is_switch:
            target = self.switches[upstream]
            port = self.topo.port_to(upstream, sender)
        else:
            target = self.hosts[upstream]
            port = 0
        self.sim.schedule(
            self.config.pfc_delay,
            lambda: target.on_pfc(port, queue, pause),
        )
        for observer in self.pfc_observers:
            observer(sender, in_port, queue, pause)

    def total_buffered_bytes(self) -> int:
        return sum(s.accounting.total_bytes for s in self.switches.values())

    def conservation_check(self) -> Dict[str, int]:
        """Injected vs delivered vs dropped vs in-flight packet counts."""
        injected = sum(self.metrics.injected_packets.values())
        delivered = sum(self.metrics.delivered_packets.values())
        dropped = sum(self.metrics.drops.values())
        in_network = injected - delivered - dropped
        return {
            "injected": injected,
            "delivered": delivered,
            "dropped": dropped,
            "in_flight": in_network,
        }
