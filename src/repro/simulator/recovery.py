"""Detect-and-break deadlock recovery — the baseline Tagger argues against.

The paper's related work splits deadlock handling into two camps (§1):
*detection* schemes that watch for a formed deadlock and break it (e.g.
by resetting or draining a victim queue), and *prevention* schemes like
Tagger. The criticism of the first camp: "these solutions do not address
the root cause of the problem, and hence cannot guarantee that the
deadlock would not immediately reappear" — and breaking a deadlock means
destroying lossless packets.

:class:`DeadlockBreaker` implements a competent member of that camp so
the claim can be measured: it polls the runtime wait-for graph and, on
finding a cycle, force-drains one victim egress queue (dropping its
packets, releasing their PFC accounts, letting the fabric resume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, TYPE_CHECKING

from repro.obs.events import EV_SIM_DEADLOCK
from repro.simulator.deadlock import WaitNode, find_deadlock_cycle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import SimNetwork

#: Drop reason recorded for packets destroyed while breaking a deadlock.
DROP_DEADLOCK_RESET = "deadlock_reset"


@dataclass
class RecoveryEvent:
    """One detected-and-broken deadlock."""

    time: float
    cycle: Tuple[WaitNode, ...]
    victim: WaitNode
    packets_dropped: int


@dataclass
class DeadlockBreaker:
    """Periodic wait-for-graph scan + victim-queue drain.

    Attributes:
        net: The fabric to protect.
        period: Poll interval in seconds. Real detectors key off pause
            storm duration / queue stall counters; polling the exact
            wait-for graph is *generous* to the baseline (zero false
            negatives, instant detection at poll granularity).
        events: Log of recoveries performed.
    """

    net: "SimNetwork"
    period: float = 0.01
    events: List[RecoveryEvent] = field(default_factory=list)
    _installed: bool = False

    def install(self) -> None:
        """Start polling. Call once, before or during the run."""
        if self._installed:
            return
        self._installed = True
        self.net.sim.schedule(self.period, self._tick)

    def _tick(self) -> None:
        cycle = find_deadlock_cycle(self.net)
        if cycle is not None:
            victim = min(cycle)  # deterministic choice
            dropped = self._drain(victim)
            self.events.append(
                RecoveryEvent(
                    time=self.net.sim.now,
                    cycle=tuple(cycle),
                    victim=victim,
                    packets_dropped=dropped,
                )
            )
            telemetry = self.net.metrics.telemetry
            if telemetry is not None:
                telemetry.emit(
                    EV_SIM_DEADLOCK,
                    time=self.net.sim.now,
                    switch=victim[0],
                    port=victim[1],
                    queue=victim[2],
                    dropped=dropped,
                )
                self.net.metrics._handles["deadlocks"].inc()
        self.net.sim.schedule(self.period, self._tick)

    def _drain(self, victim: WaitNode) -> int:
        """Drop every packet in the victim egress queue.

        Each dropped packet releases its ingress PFC account exactly as a
        transmitted packet would, so upstream pauses lift and the rest of
        the cycle drains on its own.
        """
        switch_name, port, queue = victim
        switch = self.net.switches[switch_name]
        tx = switch.tx_ports[port]
        fifo = tx.queues.get(queue)
        dropped = 0
        while fifo:
            packet = fifo.popleft()
            tx.queued_bytes[queue] -= packet.size
            self.net.metrics.record_drop(DROP_DEADLOCK_RESET, packet.flow_id)
            crossing = switch.accounting.release(
                packet.in_port, packet.in_queue, packet.size
            )
            if crossing.send_resume:
                self.net.send_pfc(
                    switch_name, packet.in_port, packet.in_queue, pause=False
                )
            dropped += 1
        return dropped

    @property
    def detections(self) -> int:
        return len(self.events)

    @property
    def total_dropped(self) -> int:
        return sum(event.packets_dropped for event in self.events)
