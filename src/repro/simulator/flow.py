"""Flow definitions.

Flows are host-to-host packet streams. Two source models:

- **closed-loop** (``rate_bps=None``, the default): the flow keeps a
  window of packets in the NIC; a new packet is injected whenever one
  finishes serializing. This models an RDMA sender that saturates the
  line unless PFC back-pressure reaches the NIC — exactly the behaviour
  that lets deadlocks freeze a flow completely.
- **open-loop** (``rate_bps`` set): packets are injected at a fixed rate
  regardless of back-pressure (the NIC queue grows unboundedly while
  paused, as host memory would).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.tags import INITIAL_TAG
from repro.exceptions import SimulationError

_flow_ids = itertools.count(1)


@dataclass
class Flow:
    """One simulated flow.

    Attributes:
        src / dst: Host names.
        start: Injection start time (seconds).
        stop: Optional injection stop time.
        packet_size: Bytes per packet.
        rate_bps: Open-loop injection rate; None = closed-loop line rate.
        window: Closed-loop NIC window (packets).
        initial_tag: Tag stamped on injected packets (traffic class).
        pinned_next_hops: Optional per-switch next-hop override — the
            simulation analogue of the paper's "manually change the
            routing tables" testbed steps. Maps switch name -> next hop.
        total_bytes: Stop after injecting this many bytes (None = endless).
        flow_id: Auto-assigned unique id (also used as the ECMP hash).
    """

    src: str
    dst: str
    start: float = 0.0
    stop: Optional[float] = None
    packet_size: int = 4096
    rate_bps: Optional[float] = None
    window: int = 8
    initial_tag: int = INITIAL_TAG
    pinned_next_hops: Optional[Dict[str, str]] = None
    total_bytes: Optional[int] = None
    flow_id: int = field(default_factory=lambda: next(_flow_ids))

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise SimulationError("flow src and dst must differ")
        if self.packet_size <= 0:
            raise SimulationError("packet_size must be positive")
        if self.window <= 0:
            raise SimulationError("window must be positive")
        if self.stop is not None and self.stop < self.start:
            raise SimulationError("flow stop precedes start")

    @property
    def closed_loop(self) -> bool:
        return self.rate_bps is None

    def active_at(self, time: float) -> bool:
        return time >= self.start and (self.stop is None or time < self.stop)


def pin_path(path: Sequence[str]) -> Dict[str, str]:
    """Build a ``pinned_next_hops`` map from an explicit node path.

    The path should run host, switches..., host (or start at the source
    ToR). Every node except the last maps to its successor; host entries
    are skipped (hosts always send to their ToR).
    """
    pinned: Dict[str, str] = {}
    for i in range(len(path) - 1):
        pinned[path[i]] = path[i + 1]
    return pinned
