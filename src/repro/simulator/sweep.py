"""Seeded multiprocessing scenario-sweep runner.

Fuzz, chaos and detection campaigns are embarrassingly parallel at the
scenario granularity: each scenario builds its own fabric, runs its own
simulation and produces a self-contained result. :func:`run_sweep` fans
a batch of such tasks across a forked worker pool with the PR-6
discipline from :mod:`repro.core.parallel`:

- **serial-identical results** — results come back indexed by task
  position, so the caller folds them in submission order and the
  aggregate is a pure function of the task list, independent of worker
  count and scheduling (pinned by ``tests/simulator/test_sweep.py``);
- **seeded dispatch only** — the optional seed shuffles which worker
  draws which task first (load balancing); it cannot change any result;
- **fork start method only** — workers inherit the parent image, so
  module state (plans, caches) is shared copy-on-write and worker
  functions must be module-level (fork-safety is FRK-certified by the
  repo self-check). Platforms without ``fork`` degrade to the serial
  path, same results;
- **structured failure, no hangs** — a worker that raises returns an
  error result for its task; a worker that *dies* (hard crash, OOM
  kill) fails its task and every task still pending with a
  ``worker-crash`` error instead of wedging the campaign.
"""

from __future__ import annotations

import multiprocessing
import random
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: A sweep worker: module-level callable taking one task, returning a
#: picklable result.
SweepFn = Callable[[Any], Any]

#: Error kind reported when the worker process died mid-task.
WORKER_CRASH = "worker-crash"
#: Error kind reported when the worker raised an exception.
WORKER_ERROR = "worker-error"


@dataclass
class SweepResult:
    """Outcome of one task: a value, or a structured error."""

    index: int
    ok: bool
    value: Any = None
    error: Optional[str] = None
    error_kind: Optional[str] = None


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _invoke(payload: Tuple[SweepFn, Any]) -> Any:
    """Run one task in the worker (module-level: pool-submittable)."""
    fn, task = payload
    return fn(task)


def _run_serial(fn: SweepFn, tasks: Sequence[Any]) -> List[SweepResult]:
    results: List[SweepResult] = []
    for index, task in enumerate(tasks):
        try:
            results.append(SweepResult(index=index, ok=True, value=fn(task)))
        except Exception as exc:  # noqa: BLE001 - structured per-task failure
            results.append(
                SweepResult(
                    index=index,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    error_kind=WORKER_ERROR,
                )
            )
    return results


def run_sweep(
    fn: SweepFn,
    tasks: Sequence[Any],
    workers: int = 1,
    seed: int = 0,
) -> List[SweepResult]:
    """Run ``fn`` over ``tasks``; results ordered by task index.

    ``fn`` must be a module-level function and each task/result must be
    picklable (the tasks cross the fork boundary). ``workers <= 1`` — or
    a platform without the ``fork`` start method — runs inline with
    byte-identical results.
    """
    context = _fork_context() if workers > 1 else None
    if context is None or workers <= 1 or len(tasks) <= 1:
        return _run_serial(fn, tasks)

    # Shuffle dispatch order only: results are re-keyed by index below,
    # so this balances load without touching the fold order.
    order = list(range(len(tasks)))
    random.Random(seed).shuffle(order)

    results: List[Optional[SweepResult]] = [None] * len(tasks)
    futures: List[Tuple[int, "Future[Any]"]] = []
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=context
    ) as pool:
        for index in order:
            futures.append((index, pool.submit(_invoke, (fn, tasks[index]))))
        for index, future in futures:
            try:
                results[index] = SweepResult(
                    index=index, ok=True, value=future.result()
                )
            except BrokenProcessPool:
                results[index] = SweepResult(
                    index=index,
                    ok=False,
                    error="worker process died before finishing this task",
                    error_kind=WORKER_CRASH,
                )
            except Exception as exc:  # noqa: BLE001 - structured failure
                results[index] = SweepResult(
                    index=index,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    error_kind=WORKER_ERROR,
                )
    final = [result for result in results if result is not None]
    assert len(final) == len(tasks)
    return final
