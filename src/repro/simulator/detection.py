"""DCFIT-style runtime deadlock detection from local switch state.

Tagger *prevents* deadlocks only while its ELP assumptions hold. When
they are violated (misconfiguration, unplanned bounces, no plan at all)
the fabric needs a *detector* — and production switches cannot compute
the global wait-for graph that :mod:`repro.simulator.deadlock` walks.
That omniscient cycle finder stays exactly what it is: the ground-truth
oracle this detector is scored against.

The detector follows DCFIT (Wu & Ng, arXiv:2009.13446): track how PFC
PAUSE frames *propagate* and detect when the propagation chain loops
back on itself, using only state a single switch can observe.

**Chains.** Every PAUSE frame carries (in-band, modeled as metadata on
the simulated frame) the chain of hops its back-pressure descended from.
A hop is the ingress account ``(node, port, queue)`` whose XOFF crossing
emitted the PAUSE. When switch ``S`` pauses upstream for account ``A``,
it looks at its *own* paused egress queues holding ``A``'s packets: the
chains stored there (from PAUSEs ``S`` previously received) caused this
PAUSE, so ``S`` forwards them extended by ``A``. If no such queue exists
the PAUSE is a fresh *initial trigger* — the root of a congestion tree
(e.g. a slow receiver NIC).

**Loop closure.** The receiving switch stores the arriving chains
against the egress queue the PAUSE freezes. A deadlock exists exactly
when the propagation wraps: some switch holds an egress queue whose
pause-chain contains one of its *own* accounts ``(S, p, q)`` **and**
that account's packets are sitting in that very queue — the local
manifestation of a wait-for cycle. Transient congestion always forms a
propagation *tree*, so the loop test structurally cannot fire without a
cyclic buffer dependency.

**Re-observation.** A loop first observed makes the queue a *suspect*.
Only after the loop is re-observed on ``confirm_scans`` consecutive
local scans — with the pause still up and the chain still closed — is
the detection *confirmed* (a self-resolving pause loop clears instead).
A RESUME wipes the stored chains and clears the suspect: that is the
transient-congestion exit.

Confirmed detections are handed to an injected callback (see
:class:`repro.detect.RecoveryCoordinator` for the quarantine/rollback
loop); this module itself only observes and reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

from repro.obs.events import (
    EV_DETECT_CLEAR,
    EV_DETECT_CONFIRM,
    EV_DETECT_SUSPECT,
    EV_DETECT_TRIGGER,
)
from repro.obs.instrument import detect_metric_handles

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import SimNetwork
    from repro.simulator.txport import TxPort

#: One hop of a pause-propagation chain: the ingress account
#: ``(node, port, queue)`` whose XOFF crossing emitted the PAUSE (for a
#: host-originated PAUSE the port is the NIC port, 0).
ChainHop = Tuple[str, int, int]

#: A pause-propagation chain, oldest hop first.
PauseChain = Tuple[ChainHop, ...]

#: A suspect/confirmed egress queue: (switch, out_port, queue).
DetectKey = Tuple[str, int, int]

#: Clear reasons (the ``detect.clear`` event's ``reason`` field).
CLEAR_RESUMED = "resumed"  # downstream resumed: transient congestion
CLEAR_BROKEN = "broken"  # loop no longer observed (chain/packets gone)
CLEAR_RECOVERED = "recovered"  # a *confirmed* queue returned to service


@dataclass(frozen=True)
class Detection:
    """One confirmed deadlock detection."""

    time: float
    switch: str
    port: int
    queue: int
    #: Simulated time the loop was first observed (suspect creation).
    first_seen: float
    #: Consecutive scans that re-observed the loop before confirming.
    observations: int
    #: The witnessing chain (contains an account of ``switch`` itself).
    chain: PauseChain

    @property
    def key(self) -> DetectKey:
        return (self.switch, self.port, self.queue)

    @property
    def latency(self) -> float:
        """Seconds from first suspicion to confirmation."""
        return self.time - self.first_seen


@dataclass(frozen=True)
class ClearEvent:
    """A suspect dismissed (or a confirmed queue recovered)."""

    time: float
    switch: str
    port: int
    queue: int
    reason: str


@dataclass
class _Suspect:
    first_seen: float
    observations: int
    chain: PauseChain
    confirmed: bool = False


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning knobs for the per-switch detector.

    Attributes:
        poll: Period of the local re-observation scan, per switch.
        confirm_scans: Consecutive scans that must re-observe a pause
            loop before it is confirmed as a deadlock. Higher values
            trade detection latency for tolerance of self-resolving
            loops; the loop test itself already rejects plain (acyclic)
            congestion.
        max_chain_hops: Chains are truncated to this many most-recent
            hops — the bound on per-frame metadata a real
            implementation would carry. Must exceed the longest cycle
            to be detected.
        max_chains: Per egress queue, at most this many distinct chains
            are stored/propagated (deterministically: sorted, first N).
    """

    poll: float = 0.005
    confirm_scans: int = 3
    max_chain_hops: int = 64
    max_chains: int = 8


class DeadlockDetector:
    """Per-switch PAUSE-propagation tracking with loop re-observation.

    Observes every PFC frame the fabric carries (via the network's
    ``pfc_observers`` hook), maintains the per-switch chain state
    described in the module docstring, and runs a periodic local scan
    per switch. Confirmed detections are appended to :attr:`detections`
    and handed to ``on_confirm``.

    The detector never touches the data plane — recovery belongs to
    :class:`repro.detect.RecoveryCoordinator`.
    """

    def __init__(
        self,
        net: "SimNetwork",
        config: Optional[DetectorConfig] = None,
        on_confirm: Optional[Callable[[Detection], None]] = None,
    ) -> None:
        self.net = net
        self.config = config or DetectorConfig()
        self.on_confirm = on_confirm
        #: switch -> (out_port, queue) -> chains carried by the pause
        #: currently freezing that egress queue.
        self._downstream: Dict[
            str, Dict[Tuple[int, int], FrozenSet[PauseChain]]
        ] = {}
        self._suspects: Dict[DetectKey, _Suspect] = {}
        self.detections: List[Detection] = []
        self.clears: List[ClearEvent] = []
        self.triggers_originated = 0
        self.suspects_raised = 0
        self._installed = False
        self._handles: Optional[Dict[str, object]] = None
        if net.telemetry is not None:
            self._handles = detect_metric_handles(net.telemetry.registry)

    # ------------------------------------------------------------------
    # Installation / PFC observation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Hook the fabric's PFC path and start the scan loop."""
        if self._installed:
            return
        self._installed = True
        self.net.pfc_observers.append(self._observe_pfc)
        self.net.sim.schedule(self.config.poll, self._scan)

    def _observe_pfc(
        self, sender: str, in_port: int, queue: int, pause: bool
    ) -> None:
        """See one PFC frame leave ``sender`` (called by ``send_pfc``).

        The chain metadata rides the frame, so its effect at the
        upstream switch is applied after the same ``pfc_delay`` the
        frame itself takes (and after ``on_pfc`` updates the pause
        flag — the simulator's FIFO tie-break guarantees the order).
        """
        upstream = self.net.topo.peer_on_port(sender, in_port)
        if upstream not in self.net.switches:
            return  # pauses a host NIC: hosts cannot be part of a CBD
        port = self.net.topo.port_to(upstream, sender)
        if pause:
            chains = self._chains_for(sender, in_port, queue)
            self.net.sim.schedule(
                self.net.config.pfc_delay,
                lambda: self._install_chains(upstream, port, queue, chains),
            )
        else:
            self.net.sim.schedule(
                self.net.config.pfc_delay,
                lambda: self._clear_chains(upstream, port, queue),
            )

    def _chains_for(
        self, sender: str, in_port: int, queue: int
    ) -> FrozenSet[PauseChain]:
        """Chains a PAUSE from ``sender``'s account carries upstream."""
        hop: ChainHop = (sender, in_port, queue)
        carried: List[PauseChain] = []
        switch = self.net.switches.get(sender)
        if switch is not None:
            stored = self._downstream.get(sender, {})
            for (port, eq), chains in stored.items():
                tx = switch.tx_ports.get(port)
                if tx is None or not tx.pause.is_paused(eq):
                    continue
                if not self._account_waits_in(tx, eq, in_port, queue):
                    continue
                carried.extend(chains)
        if not carried:
            # Fresh initial trigger: this account is the root of the
            # propagation (a congestion tree starts here).
            self.triggers_originated += 1
            if self.net.telemetry is not None:
                self.net.telemetry.emit(
                    EV_DETECT_TRIGGER,
                    time=self.net.sim.now,
                    node=sender,
                    port=in_port,
                    queue=queue,
                )
                assert self._handles is not None
                self._handles["triggers"].inc()  # type: ignore[attr-defined]
            return frozenset({(hop,)})
        keep = self.config.max_chain_hops - 1
        extended = {
            (chain[-keep:] if keep > 0 else ()) + (hop,) for chain in carried
        }
        return frozenset(sorted(extended)[: self.config.max_chains])

    @staticmethod
    def _account_waits_in(
        tx: "TxPort", queue: int, in_port: int, in_queue: int
    ) -> bool:
        """Does account ``(in_port, in_queue)`` hold packets in this FIFO?"""
        return any(
            pkt.in_port == in_port and pkt.in_queue == in_queue
            for pkt in tx.queues.get(queue, ())
        )

    def _install_chains(
        self,
        switch: str,
        port: int,
        queue: int,
        chains: FrozenSet[PauseChain],
    ) -> None:
        stored = self._downstream.setdefault(switch, {})
        existing = stored.get((port, queue))
        if existing:
            merged = sorted(existing | chains)[: self.config.max_chains]
            stored[(port, queue)] = frozenset(merged)
        else:
            stored[(port, queue)] = chains

    def _clear_chains(self, switch: str, port: int, queue: int) -> None:
        stored = self._downstream.get(switch)
        if stored is not None:
            stored.pop((port, queue), None)
        suspect = self._suspects.pop((switch, port, queue), None)
        if suspect is not None:
            self._note_clear(
                switch,
                port,
                queue,
                CLEAR_RECOVERED if suspect.confirmed else CLEAR_RESUMED,
            )

    # ------------------------------------------------------------------
    # Local re-observation scan
    # ------------------------------------------------------------------
    def _scan(self) -> None:
        now = self.net.sim.now
        for name in sorted(self._downstream):
            if name not in self.net.switches:
                continue
            stored = self._downstream[name]
            for port, queue in sorted(stored):
                self._scan_queue(name, port, queue, now)
        self.net.sim.schedule(self.config.poll, self._scan)

    def _scan_queue(
        self, name: str, port: int, queue: int, now: float
    ) -> None:
        key: DetectKey = (name, port, queue)
        tx = self.net.switches[name].tx_ports.get(port)
        chains = self._downstream[name].get((port, queue), frozenset())
        witness = None
        if tx is not None and tx.pause.is_paused(queue):
            witness = self._loop_witness(name, tx, queue, chains)
        if witness is None:
            suspect = self._suspects.pop(key, None)
            if suspect is not None:
                self._note_clear(
                    name,
                    port,
                    queue,
                    CLEAR_RECOVERED if suspect.confirmed else CLEAR_BROKEN,
                )
            return
        suspect = self._suspects.get(key)
        if suspect is None:
            suspect = _Suspect(first_seen=now, observations=1, chain=witness)
            self._suspects[key] = suspect
            self.suspects_raised += 1
            if self.net.telemetry is not None:
                self.net.telemetry.emit(
                    EV_DETECT_SUSPECT,
                    time=now,
                    switch=name,
                    port=port,
                    queue=queue,
                    chain_len=len(witness),
                )
                assert self._handles is not None
                self._handles["suspects"].inc()  # type: ignore[attr-defined]
        else:
            suspect.observations += 1
            suspect.chain = witness
        if (
            not suspect.confirmed
            and suspect.observations >= self.config.confirm_scans
        ):
            suspect.confirmed = True
            detection = Detection(
                time=now,
                switch=name,
                port=port,
                queue=queue,
                first_seen=suspect.first_seen,
                observations=suspect.observations,
                chain=witness,
            )
            self.detections.append(detection)
            if self.net.telemetry is not None:
                self.net.telemetry.emit(
                    EV_DETECT_CONFIRM,
                    time=now,
                    switch=name,
                    port=port,
                    queue=queue,
                    observations=suspect.observations,
                    latency=detection.latency,
                )
                assert self._handles is not None
                self._handles["confirms"].inc()  # type: ignore[attr-defined]
                self._handles["latency"].observe(  # type: ignore[attr-defined]
                    detection.latency
                )
            if self.on_confirm is not None:
                self.on_confirm(detection)

    def _loop_witness(
        self,
        name: str,
        tx: "TxPort",
        queue: int,
        chains: FrozenSet[PauseChain],
    ) -> Optional[PauseChain]:
        """The chain closing a wait-for loop through this queue, if any.

        Closure requires *both* halves, entirely locally observable:
        the pause freezing this queue descends from one of this
        switch's own accounts (the chain contains ``(name, p, q)``) and
        that account's packets are waiting in this very queue. Chains
        merely passing through the same switch on unrelated accounts
        (diamond fan-in of a congestion tree) do not close a loop.
        """
        for chain in sorted(chains):
            for node, in_port, in_queue in chain:
                if node != name:
                    continue
                if self._account_waits_in(tx, queue, in_port, in_queue):
                    return chain
        return None

    def _note_clear(
        self, switch: str, port: int, queue: int, reason: str
    ) -> None:
        now = self.net.sim.now
        self.clears.append(ClearEvent(now, switch, port, queue, reason))
        if self.net.telemetry is not None:
            self.net.telemetry.emit(
                EV_DETECT_CLEAR,
                time=now,
                switch=switch,
                port=port,
                queue=queue,
                reason=reason,
            )
            assert self._handles is not None
            self._handles["clears"].inc(reason=reason)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Introspection (tests, docs, the fuzz matrix)
    # ------------------------------------------------------------------
    def chains_at(
        self, switch: str
    ) -> Dict[Tuple[int, int], FrozenSet[PauseChain]]:
        """The chain state one switch currently stores (copy)."""
        return dict(self._downstream.get(switch, {}))

    def suspect_keys(self) -> List[DetectKey]:
        return sorted(self._suspects)

    def confirmed_keys(self) -> List[DetectKey]:
        return sorted(d.key for d in self.detections)

    @property
    def confirms(self) -> int:
        return len(self.detections)

    def first_confirm_time(self) -> Optional[float]:
        if not self.detections:
            return None
        return self.detections[0].time

    def clear_reasons(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for event in self.clears:
            tally[event.reason] = tally.get(event.reason, 0) + 1
        return tally
