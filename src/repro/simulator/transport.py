"""RoCE-style reliable transport: go-back-N over the simulated fabric.

Tagger's safety valve is demotion to the lossy class, and the paper is
careful about what that means (§4.2): demoted packets "are dropped only
if they arrive at a queue that is full". Whether an occasional drop is
*acceptable* is a transport question — RoCE RC NICs retransmit with
go-back-N, so a demoted (and even a dropped) packet costs goodput, not
correctness. This module implements that transport so the claim can be
measured end-to-end:

- the sender streams a message as sequenced packets under a window;
- the receiver acks cumulatively and NACKs the expected PSN on a gap
  (go-back-N, as ConnectX-3-era RoCE does);
- loss recovery via NACK or retransmission timeout;
- completion time and retransmission counts are recorded.

A :class:`ReliableMessage` registers itself with the
:class:`~repro.simulator.network.SimNetwork`; data and control packets
ride the normal fabric (control packets are small and use the same flow
id, hence the same ECMP path and priority class).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from repro.core.tags import INITIAL_TAG
from repro.exceptions import SimulationError
from repro.simulator.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import SimNetwork

_flow_ids = itertools.count(500_000)

#: Size of ACK/NACK control packets (bytes).
CONTROL_PACKET_SIZE = 64


@dataclass
class TransportStats:
    """Observable outcome of one reliable message."""

    packets_sent: int = 0
    retransmissions: int = 0
    nacks: int = 0
    timeouts: int = 0
    completed_at: Optional[float] = None

    @property
    def completed(self) -> bool:
        return self.completed_at is not None


@dataclass
class ReliableMessage:
    """One go-back-N message transfer.

    Attributes:
        src / dst: Host names.
        message_size: Total payload bytes.
        packet_size: Bytes per data packet.
        window: Max unacked packets in flight.
        initial_tag: Traffic class of both data and control packets.
        rto: Retransmission timeout (seconds).
        pinned_next_hops: Optional path pin for the data direction.
        start: Transfer start time.
    """

    src: str
    dst: str
    message_size: int
    packet_size: int = 4096
    window: int = 8
    initial_tag: int = INITIAL_TAG
    rto: float = 0.01
    pinned_next_hops: Optional[Dict[str, str]] = None
    start: float = 0.0
    flow_id: int = field(default_factory=lambda: next(_flow_ids))

    def __post_init__(self) -> None:
        if self.message_size <= 0 or self.packet_size <= 0:
            raise SimulationError("message and packet sizes must be positive")
        if self.window < 1:
            raise SimulationError("window must be >= 1")
        self.total_packets = -(-self.message_size // self.packet_size)
        self.stats = TransportStats()
        # Sender state.
        self._send_base = 0      # lowest unacked PSN
        self._next_psn = 0       # next PSN to send fresh
        self._timer_armed_for = -1
        # Receiver state. RoCE NACKs *once* per out-of-order episode —
        # without the suppression, every stray packet of a resent window
        # would trigger another full-window resend (a NACK storm).
        self._expected_psn = 0
        self._nacked_for = -1
        self._net: Optional["SimNetwork"] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, net: "SimNetwork") -> "ReliableMessage":
        """Register with the network and schedule the start."""
        if self.src not in net.hosts or self.dst not in net.hosts:
            raise SimulationError("unknown transport endpoints")
        self._net = net
        net.transports[self.flow_id] = self
        if self.pinned_next_hops:
            # Pin only the data direction; ACKs take the normal tables.
            net.pin_flow(self.flow_id, self.pinned_next_hops, dst=self.dst)
        net.sim.at(self.start, self._fill_window)
        return self

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def _fill_window(self) -> None:
        net = self._net
        assert net is not None
        while (
            self._next_psn < self.total_packets
            and self._next_psn - self._send_base < self.window
        ):
            self._send_data(self._next_psn, fresh=True)
            self._next_psn += 1
        self._arm_timer()

    def _send_data(self, psn: int, fresh: bool) -> None:
        net = self._net
        assert net is not None
        packet = Packet(
            flow_id=self.flow_id,
            src=self.src,
            dst=self.dst,
            size=self.packet_size,
            tag=self.initial_tag,
            ttl=net.config.default_ttl,
            packet_id=net.new_packet_id(),
            created_at=net.sim.now,
            kind="data",
            psn=psn,
        )
        self.stats.packets_sent += 1
        if not fresh:
            self.stats.retransmissions += 1
        net.metrics.record_injection(self.flow_id)
        queue = net.host_queue_map.queue_for(self.initial_tag)
        nic = net.hosts[self.src].nic
        assert nic is not None
        nic.enqueue(packet, queue)

    def _arm_timer(self) -> None:
        net = self._net
        assert net is not None
        if self._send_base >= self.total_packets:
            return
        armed_for = self._send_base
        self._timer_armed_for = armed_for
        net.sim.schedule(self.rto, lambda: self._on_timeout(armed_for))

    def _on_timeout(self, armed_for: int) -> None:
        if self.stats.completed or self._send_base != armed_for:
            return  # progress was made; a fresher timer is armed
        if self._timer_armed_for != armed_for:
            return
        self.stats.timeouts += 1
        self._go_back_n()

    def _go_back_n(self) -> None:
        """Resend the whole window from send_base (go-back-N recovery)."""
        self._next_psn = self._send_base
        while (
            self._next_psn < self.total_packets
            and self._next_psn - self._send_base < self.window
        ):
            self._send_data(self._next_psn, fresh=False)
            self._next_psn += 1
        self._arm_timer()

    def _on_control(self, packet: Packet) -> None:
        """ACK/NACK arrived back at the sender."""
        net = self._net
        assert net is not None
        if packet.kind == "ack":
            acked_through = packet.psn  # cumulative: everything < psn
            if acked_through > self._send_base:
                self._send_base = acked_through
                if self._send_base >= self.total_packets:
                    self.stats.completed_at = net.sim.now
                    return
                self._fill_window()
        elif packet.kind == "nack":
            self.stats.nacks += 1
            if packet.psn >= self._send_base:
                self._send_base = packet.psn
                self._go_back_n()

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_data(self, packet: Packet) -> None:
        net = self._net
        assert net is not None
        if packet.psn == self._expected_psn:
            self._expected_psn += 1
            self._nacked_for = -1  # episode over: progress was made
            self._send_control("ack", self._expected_psn)
        elif packet.psn > self._expected_psn:
            # Gap: go-back-N receivers discard and demand the expected
            # PSN — once per episode, not per stray packet.
            if self._nacked_for != self._expected_psn:
                self._nacked_for = self._expected_psn
                self._send_control("nack", self._expected_psn)
        else:
            # Duplicate of already-received data: re-ack cumulatively.
            self._send_control("ack", self._expected_psn)

    def _send_control(self, kind: str, psn: int) -> None:
        net = self._net
        assert net is not None
        packet = Packet(
            flow_id=self.flow_id,
            src=self.dst,
            dst=self.src,
            size=CONTROL_PACKET_SIZE,
            tag=self.initial_tag,
            ttl=net.config.default_ttl,
            packet_id=net.new_packet_id(),
            created_at=net.sim.now,
            kind=kind,
            psn=psn,
        )
        queue = net.host_queue_map.queue_for(self.initial_tag)
        nic = net.hosts[self.dst].nic
        assert nic is not None
        nic.enqueue(packet, queue)

    # ------------------------------------------------------------------
    # Dispatch from SimHost
    # ------------------------------------------------------------------
    def on_delivery(self, packet: Packet, at_host: str) -> None:
        """Called by the destination host for every delivered packet."""
        if packet.kind == "data" and at_host == self.dst:
            self._on_data(packet)
        elif packet.kind in ("ack", "nack") and at_host == self.src:
            self._on_control(packet)

    @property
    def completion_time(self) -> Optional[float]:
        if self.stats.completed_at is None:
            return None
        return self.stats.completed_at - self.start
