"""Runtime deadlock detection: cycles in the pause wait-for graph.

A deadlock exists when a set of egress queues (a) hold packets, (b) are
each paused by their downstream neighbor, and (c) each neighbor's pausing
ingress account can only drain through another queue in the set — i.e.
the *blocked-by* relation contains a directed cycle (the runtime
manifestation of a CBD).

Nodes of the wait-for graph are blocked egress queues
``(switch, out_port, priority)``; there is an edge ``X -> Y`` when the
ingress account that paused ``X`` holds packets currently sitting in
blocked egress queue ``Y``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import SimNetwork

WaitNode = Tuple[str, int, int]  # (switch, out_port, egress queue)


def blocked_queues(net: "SimNetwork") -> List[WaitNode]:
    """All egress queues currently holding packets while paused."""
    nodes: List[WaitNode] = []
    for name, switch in net.switches.items():
        for port, tx in switch.tx_ports.items():
            for queue in tx.blocked_queues():
                nodes.append((name, port, queue))
    return nodes


def wait_for_graph(net: "SimNetwork") -> Dict[WaitNode, Set[WaitNode]]:
    """Build the blocked-by relation among blocked egress queues."""
    nodes = set(blocked_queues(net))
    graph: Dict[WaitNode, Set[WaitNode]] = {node: set() for node in nodes}
    for switch_name, out_port, queue in nodes:
        downstream = net.topo.peer_on_port(switch_name, out_port)
        if downstream not in net.switches:
            continue  # paused by a host NIC: cannot be part of a CBD
        neighbor = net.switches[downstream]
        in_port_at_peer = net.topo.port_to(downstream, switch_name)
        # The pause came from the account (in_port_at_peer, queue) at the
        # neighbor. Find where that account's packets are waiting.
        for peer_port, tx in neighbor.tx_ports.items():
            for peer_queue, fifo in tx.queues.items():
                target = (downstream, peer_port, peer_queue)
                if target not in nodes:
                    continue
                if any(
                    pkt.in_port == in_port_at_peer and pkt.in_queue == queue
                    for pkt in fifo
                ):
                    graph[(switch_name, out_port, queue)].add(target)
    return graph


def find_deadlock_cycle(net: "SimNetwork") -> Optional[List[WaitNode]]:
    """Return one wait-for cycle (a live deadlock), or None."""
    graph = wait_for_graph(net)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    parent: Dict[WaitNode, Optional[WaitNode]] = {}

    for root in sorted(graph):
        if color[root] != WHITE:
            continue
        stack: List[Tuple[WaitNode, List[WaitNode]]] = [
            (root, sorted(graph[root]))
        ]
        color[root] = GRAY
        parent[root] = None
        while stack:
            node, succs = stack[-1]
            if succs:
                succ = succs.pop()
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    parent[succ] = node
                    stack.append((succ, sorted(graph[succ])))
                elif color[succ] == GRAY:
                    cycle = [succ]
                    walk = node
                    while walk != succ:
                        cycle.append(walk)
                        walk = parent[walk]
                    cycle.reverse()
                    return cycle
            else:
                color[node] = BLACK
                stack.pop()
    return None


def is_deadlocked(net: "SimNetwork") -> bool:
    return find_deadlock_cycle(net) is not None


@dataclass(frozen=True)
class OracleSample:
    """One periodic ground-truth observation."""

    time: float
    cycle: Optional[Tuple[WaitNode, ...]]

    @property
    def deadlocked(self) -> bool:
        return self.cycle is not None


@dataclass
class OracleSampler:
    """Periodic, seeded sampling of the omniscient cycle finder.

    Callers used to invoke :func:`find_deadlock_cycle` ad hoc, which
    made "when did the oracle first see the deadlock?" depend on who
    happened to poll — useless as a reference clock for detector
    latency. The sampler fixes the cadence: one scan every ``period``
    seconds, with a *seeded* phase offset so the sampling grid is
    deterministic per seed yet not accidentally aligned with the
    detector's own scan (which would hide up to one full period of
    latency systematically).

    Attributes:
        net: The fabric to sample.
        period: Sampling period in simulated seconds.
        seed: Seeds the phase draw in ``[0, period)``; the same seed
            always yields the same sampling grid.
        phase: Explicit first-sample offset; overrides the seeded draw.
    """

    net: "SimNetwork"
    period: float = 0.005
    seed: int = 0
    phase: Optional[float] = None
    samples: List[OracleSample] = field(default_factory=list)
    first_cycle_time: Optional[float] = None
    first_cycle: Optional[Tuple[WaitNode, ...]] = None
    _installed: bool = False

    def install(self) -> None:
        """Start sampling. Call once, before or during the run."""
        if self._installed:
            return
        self._installed = True
        offset = self.phase
        if offset is None:
            offset = random.Random(self.seed).uniform(0.0, self.period)
        self.net.sim.schedule(offset, self._tick)

    def _tick(self) -> None:
        cycle = find_deadlock_cycle(self.net)
        sample = OracleSample(
            time=self.net.sim.now,
            cycle=None if cycle is None else tuple(cycle),
        )
        self.samples.append(sample)
        if sample.deadlocked and self.first_cycle_time is None:
            self.first_cycle_time = sample.time
            self.first_cycle = sample.cycle
        self.net.sim.schedule(self.period, self._tick)

    @property
    def deadlock_seen(self) -> bool:
        return self.first_cycle_time is not None

    def deadlocked_at_end(self) -> bool:
        """Did the last sample still show a live cycle?"""
        return bool(self.samples) and self.samples[-1].deadlocked
