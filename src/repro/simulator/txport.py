"""Egress port machinery shared by switches and host NICs.

A :class:`TxPort` owns the per-priority egress FIFOs of one physical
port, the PFC pause flags set by the downstream neighbor, and the
transmit loop (serialization delay + propagation delay). Scheduling among
non-paused, non-empty priority queues is round-robin — close enough to
the WRR commodity switches use, and free of starvation artifacts.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from repro.core.pipeline import LOSSY_QUEUE
from repro.simulator.engine import Callback, Simulator, WheelSimulator
from repro.simulator.packet import Packet, SimConfig
from repro.simulator.pfc import PauseState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.buffers import VectorAccounting

DeliverFn = Callable[[Packet], None]
SentFn = Callable[[Packet], None]


class TxPort:
    """One egress port: priority FIFOs + PFC pause state + tx loop."""

    # Slotted (base and fast subclass): switch datapaths touch port
    # attributes on every hop, and slots keep that off the dict path.
    __slots__ = (
        "sim", "config", "owner", "port", "peer", "_deliver", "_on_sent",
        "queues", "queued_bytes", "pause", "pause_started", "busy",
        "link_up", "_rr_last", "bytes_sent", "packets_sent",
    )

    def __init__(
        self,
        sim: Simulator,
        config: SimConfig,
        owner: str,
        port: int,
        peer: str,
        deliver: DeliverFn,
        on_sent: Optional[SentFn] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.owner = owner
        self.port = port
        self.peer = peer
        self._deliver = deliver
        self._on_sent = on_sent
        self.queues: Dict[int, Deque[Packet]] = {}
        self.queued_bytes: Dict[int, int] = {}
        self.pause = PauseState()
        self.pause_started: Dict[int, float] = {}
        self.busy = False
        self.link_up = True
        self._rr_last = -1
        self.bytes_sent = 0
        self.packets_sent = 0

    # ------------------------------------------------------------------
    # Enqueue / PFC
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, queue: int) -> None:
        packet.egress_queue = queue
        threshold = self.config.ecn_threshold_bytes
        if (
            threshold is not None
            and self.queued_bytes.get(queue, 0) > threshold
        ):
            packet.ecn = True
        self.queues.setdefault(queue, deque()).append(packet)
        self.queued_bytes[queue] = self.queued_bytes.get(queue, 0) + packet.size
        self._try_send()

    def on_pause(self, queue: int) -> None:
        if not self.pause.is_paused(queue):
            self.pause_started[queue] = self.sim.now
        self.pause.pause(queue)

    def on_resume(self, queue: int) -> None:
        self.pause.resume(queue)
        self.pause_started.pop(queue, None)
        self._try_send()

    def paused_duration(self, queue: int) -> float:
        """How long this queue has been continuously paused (0 if not)."""
        started = self.pause_started.get(queue)
        if started is None or not self.pause.is_paused(queue):
            return 0.0
        return self.sim.now - started

    # ------------------------------------------------------------------
    # Transmit loop
    # ------------------------------------------------------------------
    def _pick_queue(self) -> Optional[int]:
        """Round-robin over non-empty, non-paused queues."""
        candidates = sorted(
            q
            for q, fifo in self.queues.items()
            if fifo and not self.pause.is_paused(q)
        )
        if not candidates:
            return None
        for q in candidates:
            if q > self._rr_last:
                return q
        return candidates[0]

    def set_link_state(self, up: bool) -> None:
        """Bring the physical link up or down.

        A down link transmits nothing; queued packets stay queued (they
        drain if the link recovers — the owner typically drains them via
        :meth:`drain_all` on failure instead).
        """
        self.link_up = up
        if up:
            self._try_send()

    def drain_all(self) -> List[Packet]:
        """Remove and return every queued packet (used on link failure)."""
        drained: List[Packet] = []
        for queue, fifo in self.queues.items():
            while fifo:
                packet = fifo.popleft()
                self.queued_bytes[queue] -= packet.size
                drained.append(packet)
        return drained

    def _try_send(self) -> None:
        if self.busy or not self.link_up:
            return
        queue = self._pick_queue()
        if queue is None:
            return
        packet = self.queues[queue].popleft()
        self.queued_bytes[queue] -= packet.size
        self._rr_last = queue
        self.busy = True
        tx_time = self.config.tx_time(packet.size)
        self.sim.schedule(tx_time, lambda: self._complete(packet))

    def _complete(self, packet: Packet) -> None:
        self.busy = False
        self.bytes_sent += packet.size
        self.packets_sent += 1
        if self._on_sent is not None:
            self._on_sent(packet)
        self.sim.schedule(
            self.config.prop_delay, lambda: self._deliver(packet)
        )
        self._try_send()

    # ------------------------------------------------------------------
    # Introspection (metrics, deadlock detection)
    # ------------------------------------------------------------------
    def depth(self, queue: int) -> int:
        return len(self.queues.get(queue, ()))

    def bytes_queued(self, queue: Optional[int] = None) -> int:
        if queue is not None:
            return self.queued_bytes.get(queue, 0)
        return sum(self.queued_bytes.values())

    def blocked_queues(self) -> List[int]:
        """Queues holding packets while paused by the downstream peer."""
        return sorted(
            q
            for q, fifo in self.queues.items()
            if fifo and self.pause.is_paused(q)
        )

    def held_packets(self, queue: int) -> List[Packet]:
        return list(self.queues.get(queue, ()))

    def __repr__(self) -> str:
        return (
            f"TxPort({self.owner}:{self.port} -> {self.peer}, "
            f"queued={self.bytes_queued()}B, paused={sorted(self.pause.paused)})"
        )


class FastTxPort(TxPort):
    """Allocation-light :class:`TxPort` for the overhauled engine.

    Behaviour-identical to the reference (the equivalence suite diffs
    the two), with the per-packet overheads removed:

    - no closure per transmit/delivery — the in-flight packet rides in
      ``_tx_packet`` and a bound method completes it; delivered packets
      ride a wire FIFO (propagation delay is constant per port, so the
      wire drains in schedule order);
    - no closure per *hop* either — :meth:`bind_receiver` stores the
      downstream ``receive`` bound method plus its ingress port, so a
      delivery is one direct call instead of a lambda trampoline;
    - no ``sorted()`` per round-robin pick — queue ids are kept in a
      sorted registry maintained on first use, and the pick loop is
      inlined into :meth:`_try_send`;
    - the ECN threshold, link rate and ``sim.schedule`` are cached
      locals instead of attribute chains.

    ``queues``/``queued_bytes``/``pause``/``pause_started`` stay fully
    authoritative — detection, recovery and the deadlock probes read and
    mutate them directly on both port classes.
    """

    __slots__ = (
        "_bw", "_prop", "_ecn_threshold", "_schedule", "_wsim", "_qids",
        "_tx_packet", "_wire", "_complete_cb", "_deliver_cb", "_pauseset",
        "_recv_fn", "_recv_port", "_src_acct", "_src_pfc",
    )

    def __init__(
        self,
        sim: Simulator,
        config: SimConfig,
        owner: str,
        port: int,
        peer: str,
        deliver: DeliverFn,
        on_sent: Optional[SentFn] = None,
    ) -> None:
        super().__init__(sim, config, owner, port, peer, deliver, on_sent)
        self._bw = config.bandwidth_bps
        self._prop = config.prop_delay
        self._ecn_threshold = config.ecn_threshold_bytes
        self._schedule = sim.schedule
        # Exact-type check: a WheelSimulator subclass could override
        # scheduling, so only the stock wheel gets the inline fast path.
        self._wsim: Optional[WheelSimulator] = (
            sim if type(sim) is WheelSimulator else None
        )
        self._qids: List[int] = []  # sorted registry of known queue ids
        self._pauseset = self.pause.paused  # PauseState mutates in place
        self._tx_packet: Optional[Packet] = None
        self._wire: Deque[Packet] = deque()
        # Pre-bound event callbacks: binding a method per schedule costs
        # an allocation on every packet-hop; these two never change.
        self._complete_cb: Callback = self._complete_tx
        self._deliver_cb: Callback = self._deliver_next
        self._recv_fn: Optional[Callable[[Packet, int], None]] = None
        self._recv_port = 0
        self._src_acct: Optional["VectorAccounting"] = None
        self._src_pfc: Optional[Callable[..., None]] = None

    def bind_receiver(
        self, receive: Callable[[Packet, int], None], port: int
    ) -> None:
        """Bind the downstream ``receive(packet, in_port)`` directly."""
        self._recv_fn = receive
        self._recv_port = port

    def bind_sender(
        self, acct: "VectorAccounting", send_pfc: Callable[..., None]
    ) -> None:
        """Fuse the owning switch's per-transmit ingress release.

        With the accounting object and the fabric's ``send_pfc`` bound
        here, :meth:`_complete_tx` performs the release inline instead of
        bouncing through the switch's ``on_sent`` callback — one less
        frame per transmitted packet. Only switch-owned ports bind this;
        host NICs keep the ``on_sent`` closed-loop refill callback.
        """
        self._src_acct = acct
        self._src_pfc = send_pfc

    def enqueue(self, packet: Packet, queue: int) -> None:
        packet.egress_queue = queue
        queues = self.queues
        fifo = queues.get(queue)
        if fifo is None:
            fifo = deque()
            queues[queue] = fifo
            self.queued_bytes[queue] = 0
            self._qids.append(queue)
            self._qids.sort()
        queued = self.queued_bytes[queue]
        threshold = self._ecn_threshold
        if threshold is not None and queued > threshold:
            packet.ecn = True
        fifo.append(packet)
        self.queued_bytes[queue] = queued + packet.size
        if self.busy or not self.link_up:
            return
        # _try_send, inlined (one enqueue per packet-hop).
        paused = self._pauseset
        rr_last = self._rr_last
        pick = -1
        first = -1
        for q in self._qids:
            if not queues[q] or q in paused:
                continue
            if q > rr_last:
                pick = q
                break
            if first < 0:
                first = q
        if pick < 0:
            if first < 0:
                return
            pick = first
        head = queues[pick].popleft()
        self.queued_bytes[pick] -= head.size
        self._rr_last = pick
        self.busy = True
        self._tx_packet = head
        wsim = self._wsim
        if wsim is None:
            self._schedule(head.size * 8.0 / self._bw, self._complete_cb)
            return
        # WheelSimulator.schedule, inlined (delay is always positive).
        time = wsim.now + head.size * 8.0 / self._bw
        seq = wsim._seq
        wsim._seq = seq + 1
        event = (time, seq, self._complete_cb)
        slot = int(time / wsim._res)
        cur = wsim._cur_slot
        if slot <= cur:
            insort(wsim._active, event, wsim._active_pos)
        elif slot < cur + wsim._nslots:
            cell = wsim._ring[slot % wsim._nslots]
            if not cell:
                heappush(wsim._slot_heap, slot)
            cell.append(event)
            wsim._ring_count += 1
        else:
            heappush(wsim._overflow, event)

    def _pick_queue(self) -> Optional[int]:
        queues = self.queues
        paused = self._pauseset
        rr_last = self._rr_last
        first = -1
        for q in self._qids:
            if not queues[q] or q in paused:
                continue
            if q > rr_last:
                return q
            if first < 0:
                first = q
        return first if first >= 0 else None

    def _try_send(self) -> None:
        if self.busy or not self.link_up:
            return
        # Round-robin pick, inlined (this is the per-transmit hot loop).
        queues = self.queues
        paused = self._pauseset
        rr_last = self._rr_last
        queue = -1
        first = -1
        for q in self._qids:
            if not queues[q] or q in paused:
                continue
            if q > rr_last:
                queue = q
                break
            if first < 0:
                first = q
        if queue < 0:
            if first < 0:
                return
            queue = first
        packet = queues[queue].popleft()
        self.queued_bytes[queue] -= packet.size
        self._rr_last = queue
        self.busy = True
        self._tx_packet = packet
        self._schedule(packet.size * 8.0 / self._bw, self._complete_cb)

    def _complete_tx(self) -> None:
        packet = self._tx_packet
        assert packet is not None
        self._tx_packet = None
        self.busy = False
        size = packet.size
        self.bytes_sent += size
        self.packets_sent += 1
        # Keep the reference schedule order: the sender hook may start
        # the next transmit (closed-loop refill) *before* the delivery
        # is booked. Switch ports run the ingress release inline here
        # (bind_sender); host NICs call back into the host.
        src_acct = self._src_acct
        if src_acct is not None:
            # FastSimSwitch.on_sent, inlined.
            in_port = packet.in_port
            in_queue = packet.in_queue
            assert in_port is not None and in_queue is not None
            idx = in_port * src_acct._stride + in_queue
            occ_list = src_acct._occ
            if idx >= len(occ_list):
                src_acct._grow(idx)
            occ = occ_list[idx]
            if size > occ:
                raise AssertionError(
                    f"ingress accounting underflow on {(in_port, in_queue)}: "
                    f"{occ} - {size}"
                )
            occ_list[idx] = occ - size
            if in_queue != LOSSY_QUEUE:
                src_acct.lossless_total -= size
                if src_acct._paused[idx]:
                    if src_acct._static:
                        xon = src_acct._xon
                    else:
                        # current_xon(), inlined: alpha threshold on the
                        # post-release pool, clamped, minus the offset.
                        free = src_acct._shared - src_acct.lossless_total
                        dyn = int(src_acct._alpha * free)
                        xoff = dyn if dyn < src_acct._xoff else src_acct._xoff
                        if xoff < src_acct._floor:
                            xoff = src_acct._floor
                        xon = xoff - src_acct._xon_off
                        if xon < 0:
                            xon = 0
                    if occ - size <= xon:
                        src_acct._paused[idx] = False
                        assert self._src_pfc is not None
                        self._src_pfc(
                            self.owner, in_port, in_queue, pause=False
                        )
        elif self._on_sent is not None:
            self._on_sent(packet)
        self._wire.append(packet)
        wsim = self._wsim
        if wsim is None:
            self._schedule(self._prop, self._deliver_cb)
        else:
            # WheelSimulator.schedule, inlined.
            time = wsim.now + self._prop
            seq = wsim._seq
            wsim._seq = seq + 1
            event = (time, seq, self._deliver_cb)
            slot = int(time / wsim._res)
            cur = wsim._cur_slot
            if slot <= cur:
                insort(wsim._active, event, wsim._active_pos)
            elif slot < cur + wsim._nslots:
                cell = wsim._ring[slot % wsim._nslots]
                if not cell:
                    heappush(wsim._slot_heap, slot)
                cell.append(event)
                wsim._ring_count += 1
            else:
                heappush(wsim._overflow, event)
        if self.busy or not self.link_up:
            return
        # _try_send, inlined (one completion per packet-hop).
        queues = self.queues
        paused = self._pauseset
        rr_last = self._rr_last
        pick = -1
        first = -1
        for q in self._qids:
            if not queues[q] or q in paused:
                continue
            if q > rr_last:
                pick = q
                break
            if first < 0:
                first = q
        if pick < 0:
            if first < 0:
                return
            pick = first
        head = queues[pick].popleft()
        self.queued_bytes[pick] -= head.size
        self._rr_last = pick
        self.busy = True
        self._tx_packet = head
        if wsim is None:
            self._schedule(head.size * 8.0 / self._bw, self._complete_cb)
            return
        time = wsim.now + head.size * 8.0 / self._bw
        seq = wsim._seq
        wsim._seq = seq + 1
        event = (time, seq, self._complete_cb)
        slot = int(time / wsim._res)
        cur = wsim._cur_slot
        if slot <= cur:
            insort(wsim._active, event, wsim._active_pos)
        elif slot < cur + wsim._nslots:
            cell = wsim._ring[slot % wsim._nslots]
            if not cell:
                heappush(wsim._slot_heap, slot)
            cell.append(event)
            wsim._ring_count += 1
        else:
            heappush(wsim._overflow, event)

    def _deliver_next(self) -> None:
        recv = self._recv_fn
        if recv is not None:
            recv(self._wire.popleft(), self._recv_port)
        else:
            self._deliver(self._wire.popleft())
