"""Egress port machinery shared by switches and host NICs.

A :class:`TxPort` owns the per-priority egress FIFOs of one physical
port, the PFC pause flags set by the downstream neighbor, and the
transmit loop (serialization delay + propagation delay). Scheduling among
non-paused, non-empty priority queues is round-robin — close enough to
the WRR commodity switches use, and free of starvation artifacts.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet, SimConfig
from repro.simulator.pfc import PauseState

DeliverFn = Callable[[Packet], None]
SentFn = Callable[[Packet], None]


class TxPort:
    """One egress port: priority FIFOs + PFC pause state + tx loop."""

    def __init__(
        self,
        sim: Simulator,
        config: SimConfig,
        owner: str,
        port: int,
        peer: str,
        deliver: DeliverFn,
        on_sent: Optional[SentFn] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.owner = owner
        self.port = port
        self.peer = peer
        self._deliver = deliver
        self._on_sent = on_sent
        self.queues: Dict[int, Deque[Packet]] = {}
        self.queued_bytes: Dict[int, int] = {}
        self.pause = PauseState()
        self.pause_started: Dict[int, float] = {}
        self.busy = False
        self.link_up = True
        self._rr_last = -1
        self.bytes_sent = 0
        self.packets_sent = 0

    # ------------------------------------------------------------------
    # Enqueue / PFC
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, queue: int) -> None:
        packet.egress_queue = queue
        threshold = self.config.ecn_threshold_bytes
        if (
            threshold is not None
            and self.queued_bytes.get(queue, 0) > threshold
        ):
            packet.ecn = True
        self.queues.setdefault(queue, deque()).append(packet)
        self.queued_bytes[queue] = self.queued_bytes.get(queue, 0) + packet.size
        self._try_send()

    def on_pause(self, queue: int) -> None:
        if not self.pause.is_paused(queue):
            self.pause_started[queue] = self.sim.now
        self.pause.pause(queue)

    def on_resume(self, queue: int) -> None:
        self.pause.resume(queue)
        self.pause_started.pop(queue, None)
        self._try_send()

    def paused_duration(self, queue: int) -> float:
        """How long this queue has been continuously paused (0 if not)."""
        started = self.pause_started.get(queue)
        if started is None or not self.pause.is_paused(queue):
            return 0.0
        return self.sim.now - started

    # ------------------------------------------------------------------
    # Transmit loop
    # ------------------------------------------------------------------
    def _pick_queue(self) -> Optional[int]:
        """Round-robin over non-empty, non-paused queues."""
        candidates = sorted(
            q
            for q, fifo in self.queues.items()
            if fifo and not self.pause.is_paused(q)
        )
        if not candidates:
            return None
        for q in candidates:
            if q > self._rr_last:
                return q
        return candidates[0]

    def set_link_state(self, up: bool) -> None:
        """Bring the physical link up or down.

        A down link transmits nothing; queued packets stay queued (they
        drain if the link recovers — the owner typically drains them via
        :meth:`drain_all` on failure instead).
        """
        self.link_up = up
        if up:
            self._try_send()

    def drain_all(self) -> List[Packet]:
        """Remove and return every queued packet (used on link failure)."""
        drained: List[Packet] = []
        for queue, fifo in self.queues.items():
            while fifo:
                packet = fifo.popleft()
                self.queued_bytes[queue] -= packet.size
                drained.append(packet)
        return drained

    def _try_send(self) -> None:
        if self.busy or not self.link_up:
            return
        queue = self._pick_queue()
        if queue is None:
            return
        packet = self.queues[queue].popleft()
        self.queued_bytes[queue] -= packet.size
        self._rr_last = queue
        self.busy = True
        tx_time = self.config.tx_time(packet.size)
        self.sim.schedule(tx_time, lambda: self._complete(packet))

    def _complete(self, packet: Packet) -> None:
        self.busy = False
        self.bytes_sent += packet.size
        self.packets_sent += 1
        if self._on_sent is not None:
            self._on_sent(packet)
        self.sim.schedule(
            self.config.prop_delay, lambda: self._deliver(packet)
        )
        self._try_send()

    # ------------------------------------------------------------------
    # Introspection (metrics, deadlock detection)
    # ------------------------------------------------------------------
    def depth(self, queue: int) -> int:
        return len(self.queues.get(queue, ()))

    def bytes_queued(self, queue: Optional[int] = None) -> int:
        if queue is not None:
            return self.queued_bytes.get(queue, 0)
        return sum(self.queued_bytes.values())

    def blocked_queues(self) -> List[int]:
        """Queues holding packets while paused by the downstream peer."""
        return sorted(
            q
            for q, fifo in self.queues.items()
            if fifo and self.pause.is_paused(q)
        )

    def held_packets(self, queue: int) -> List[Packet]:
        return list(self.queues.get(queue, ()))

    def __repr__(self) -> str:
        return (
            f"TxPort({self.owner}:{self.port} -> {self.peer}, "
            f"queued={self.bytes_queued()}B, paused={sorted(self.pause.paused)})"
        )
