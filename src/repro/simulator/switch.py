"""The simulated switch: forwarding, Tagger pipeline, PFC reaction.

Packet life inside a switch:

1. arrival: TTL check, route lookup (flow-pinned next hop or forwarding
   table with ECMP-by-flow-hash);
2. ingress accounting against the (in_port, priority) PFC account, where
   the priority is the *arriving* tag's queue (step 1 of the Tagger
   pipeline); XOFF crossings pause the upstream neighbor;
3. tag rewrite (step 2) and egress queue selection (step 3 — by the new
   tag when ``decouple_egress``, by the old tag to reproduce the Fig. 8a
   bug otherwise);
4. egress FIFO; the PFC account is released only when the packet finishes
   serializing out, and XON crossings resume the upstream neighbor.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.core.pipeline import LOSSY_QUEUE, PipelineConfig
from repro.core.tags import LOSSY_TAG
from repro.exceptions import RoutingError
from repro.simulator.buffers import IngressAccounting
from repro.simulator.metrics import (
    DROP_LOSSLESS,
    DROP_LOSSY,
    DROP_NO_ROUTE,
    DROP_TTL,
)
from repro.simulator.packet import Packet
from repro.simulator.txport import TxPort

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import SimNetwork


class SimSwitch:
    """One switch instance inside a :class:`SimNetwork`."""

    def __init__(
        self,
        net: "SimNetwork",
        name: str,
        pipeline: PipelineConfig,
    ) -> None:
        self.net = net
        self.name = name
        self.pipeline = pipeline
        self.accounting = IngressAccounting(net.config)
        self.tx_ports: Dict[int, TxPort] = {}

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_port: int) -> None:
        metrics = self.net.metrics
        tracer = self.net.tracer
        if tracer is not None:
            self._trace(packet, "receive", f"in_port={in_port}")
        packet.ttl -= 1
        packet.hops += 1
        if packet.ttl <= 0:
            metrics.record_drop(DROP_TTL, packet.flow_id)
            if tracer is not None:
                self._trace(packet, "drop", DROP_TTL)
            return

        next_hop = self._next_hop(packet)
        if next_hop is None:
            metrics.record_drop(DROP_NO_ROUTE, packet.flow_id)
            if tracer is not None:
                self._trace(packet, "drop", DROP_NO_ROUTE)
            return
        out_port = self.net.topo.port_to(self.name, next_hop)

        in_queue = self.pipeline.classify_ingress(packet.tag)
        crossing = self.accounting.charge(in_port, in_queue, packet.size)
        if not crossing.accepted:
            reason = DROP_LOSSY if in_queue == LOSSY_QUEUE else DROP_LOSSLESS
            metrics.record_drop(reason, packet.flow_id)
            if tracer is not None:
                self._trace(packet, "drop", reason)
            return
        if crossing.send_pause:
            self.net.send_pfc(self.name, in_port, in_queue, pause=True)

        old_tag = packet.tag
        if self.net.topo.node(next_hop).is_host:
            # Delivery hop: keep the tag onto the host link. (Plans built
            # from switch-level ELP paths have no host-egress rules; the
            # safeguard default must not demote deliveries.)
            new_tag = old_tag
        else:
            new_tag = self.pipeline.rewrite(old_tag, in_port, out_port)
            if new_tag != old_tag:
                metrics.record_demotion(
                    self.net.sim.now,
                    self.name,
                    old_tag,
                    new_tag,
                    packet.flow_id,
                )
        egress_queue = self.pipeline.classify_egress(old_tag, new_tag)
        if (
            self.net.quarantined
            and egress_queue != LOSSY_QUEUE
            and (self.name, out_port, egress_queue) in self.net.quarantined
        ):
            # Recovery quarantined this egress queue: run it lossy (the
            # new tag rides along so downstream hops stay lossy too).
            metrics.record_demotion(
                self.net.sim.now, self.name, new_tag, LOSSY_TAG,
                packet.flow_id,
            )
            new_tag = LOSSY_TAG
            egress_queue = LOSSY_QUEUE
        packet.tag = new_tag
        packet.in_port = in_port
        packet.in_queue = in_queue
        if self.net.tracer is not None:
            self._trace(
                packet,
                "forward",
                f"-> {next_hop} tag {old_tag}->{new_tag} q{egress_queue}",
            )
        self.tx_ports[out_port].enqueue(packet, egress_queue)

    def _trace(self, packet: Packet, kind: str, detail: str) -> None:
        self.net.tracer.record(
            self.net.sim.now,
            kind,
            self.name,
            flow_id=packet.flow_id,
            packet_id=packet.packet_id,
            tag=packet.tag,
            detail=detail,
        )

    def _next_hop(self, packet: Packet) -> Optional[str]:
        pinned = self.net.pinned_next_hop(
            packet.flow_id, self.name, dst=packet.dst
        )
        if pinned is not None:
            return pinned
        try:
            return self.net.table.next_hop(
                self.name, packet.dst, flow_hash=packet.flow_id
            )
        except RoutingError:
            return None

    def on_sent(self, packet: Packet) -> None:
        """Egress serialization finished: release the PFC account."""
        assert packet.in_port is not None and packet.in_queue is not None
        crossing = self.accounting.release(
            packet.in_port, packet.in_queue, packet.size
        )
        if crossing.send_resume:
            self.net.send_pfc(
                self.name, packet.in_port, packet.in_queue, pause=False
            )

    # ------------------------------------------------------------------
    # PFC control path (frames from downstream neighbors)
    # ------------------------------------------------------------------
    def on_pfc(self, port: int, queue: int, pause: bool) -> None:
        tx = self.tx_ports[port]
        if pause:
            tx.on_pause(queue)
        else:
            tx.on_resume(queue)

    def __repr__(self) -> str:
        return f"SimSwitch({self.name}, buffered={self.accounting.total_bytes}B)"
