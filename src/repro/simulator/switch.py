"""The simulated switch: forwarding, Tagger pipeline, PFC reaction.

Packet life inside a switch:

1. arrival: TTL check, route lookup (flow-pinned next hop or forwarding
   table with ECMP-by-flow-hash);
2. ingress accounting against the (in_port, priority) PFC account, where
   the priority is the *arriving* tag's queue (step 1 of the Tagger
   pipeline); XOFF crossings pause the upstream neighbor;
3. tag rewrite (step 2) and egress queue selection (step 3 — by the new
   tag when ``decouple_egress``, by the old tag to reproduce the Fig. 8a
   bug otherwise);
4. egress FIFO; the PFC account is released only when the packet finishes
   serializing out, and XON crossings resume the upstream neighbor.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappush
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.core.pipeline import LOSSY_QUEUE, PipelineConfig
from repro.core.tags import LOSSY_TAG
from repro.exceptions import RoutingError
from repro.simulator.buffers import (
    CHARGE_ACCEPT,
    CHARGE_ACCEPT_PAUSE,
    CHARGE_REJECT,
    IngressAccounting,
    VectorAccounting,
)
from repro.simulator.metrics import (
    DROP_LOSSLESS,
    DROP_LOSSY,
    DROP_NO_ROUTE,
    DROP_TTL,
)
from repro.simulator.packet import Packet
from repro.simulator.txport import FastTxPort, TxPort

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import SimNetwork


class SimSwitch:
    """One switch instance inside a :class:`SimNetwork`."""

    # Slotted (base and fast subclass): the switch object is touched on
    # every hop of every packet; slots keep the lookups off the dict.
    __slots__ = ("net", "name", "pipeline", "accounting", "tx_ports")

    def __init__(
        self,
        net: "SimNetwork",
        name: str,
        pipeline: PipelineConfig,
    ) -> None:
        self.net = net
        self.name = name
        self.pipeline = pipeline
        self.accounting = IngressAccounting(net.config)
        self.tx_ports: Dict[int, TxPort] = {}

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_port: int) -> None:
        metrics = self.net.metrics
        tracer = self.net.tracer
        if tracer is not None:
            self._trace(packet, "receive", f"in_port={in_port}")
        packet.ttl -= 1
        packet.hops += 1
        if packet.ttl <= 0:
            metrics.record_drop(DROP_TTL, packet.flow_id)
            if tracer is not None:
                self._trace(packet, "drop", DROP_TTL)
            return

        next_hop = self._next_hop(packet)
        if next_hop is None:
            metrics.record_drop(DROP_NO_ROUTE, packet.flow_id)
            if tracer is not None:
                self._trace(packet, "drop", DROP_NO_ROUTE)
            return
        out_port = self.net.topo.port_to(self.name, next_hop)

        in_queue = self.pipeline.classify_ingress(packet.tag)
        crossing = self.accounting.charge(in_port, in_queue, packet.size)
        if not crossing.accepted:
            reason = DROP_LOSSY if in_queue == LOSSY_QUEUE else DROP_LOSSLESS
            metrics.record_drop(reason, packet.flow_id)
            if tracer is not None:
                self._trace(packet, "drop", reason)
            return
        if crossing.send_pause:
            self.net.send_pfc(self.name, in_port, in_queue, pause=True)

        old_tag = packet.tag
        if self.net.topo.node(next_hop).is_host:
            # Delivery hop: keep the tag onto the host link. (Plans built
            # from switch-level ELP paths have no host-egress rules; the
            # safeguard default must not demote deliveries.)
            new_tag = old_tag
        else:
            new_tag = self.pipeline.rewrite(old_tag, in_port, out_port)
            if new_tag != old_tag:
                metrics.record_demotion(
                    self.net.sim.now,
                    self.name,
                    old_tag,
                    new_tag,
                    packet.flow_id,
                )
        egress_queue = self.pipeline.classify_egress(old_tag, new_tag)
        if (
            self.net.quarantined
            and egress_queue != LOSSY_QUEUE
            and (self.name, out_port, egress_queue) in self.net.quarantined
        ):
            # Recovery quarantined this egress queue: run it lossy (the
            # new tag rides along so downstream hops stay lossy too).
            metrics.record_demotion(
                self.net.sim.now, self.name, new_tag, LOSSY_TAG,
                packet.flow_id,
            )
            new_tag = LOSSY_TAG
            egress_queue = LOSSY_QUEUE
        packet.tag = new_tag
        packet.in_port = in_port
        packet.in_queue = in_queue
        if self.net.tracer is not None:
            self._trace(
                packet,
                "forward",
                f"-> {next_hop} tag {old_tag}->{new_tag} q{egress_queue}",
            )
        self.tx_ports[out_port].enqueue(packet, egress_queue)

    def _trace(self, packet: Packet, kind: str, detail: str) -> None:
        self.net.tracer.record(
            self.net.sim.now,
            kind,
            self.name,
            flow_id=packet.flow_id,
            packet_id=packet.packet_id,
            tag=packet.tag,
            detail=detail,
        )

    def _next_hop(self, packet: Packet) -> Optional[str]:
        pinned = self.net.pinned_next_hop(
            packet.flow_id, self.name, dst=packet.dst
        )
        if pinned is not None:
            return pinned
        try:
            return self.net.table.next_hop(
                self.name, packet.dst, flow_hash=packet.flow_id
            )
        except RoutingError:
            return None

    def on_sent(self, packet: Packet) -> None:
        """Egress serialization finished: release the PFC account."""
        assert packet.in_port is not None and packet.in_queue is not None
        crossing = self.accounting.release(
            packet.in_port, packet.in_queue, packet.size
        )
        if crossing.send_resume:
            self.net.send_pfc(
                self.name, packet.in_port, packet.in_queue, pause=False
            )

    # ------------------------------------------------------------------
    # PFC control path (frames from downstream neighbors)
    # ------------------------------------------------------------------
    def on_pfc(self, port: int, queue: int, pause: bool) -> None:
        tx = self.tx_ports[port]
        if pause:
            tx.on_pause(queue)
        else:
            tx.on_resume(queue)

    def __repr__(self) -> str:
        return f"SimSwitch({self.name}, buffered={self.accounting.total_bytes}B)"


#: Cache-miss sentinel (``None`` is a legal cached answer: "no route").
_MISS = object()


#: Cached decision: next hop, egress port, ingress queue, rewritten tag,
#: egress queue. ``None`` caches "no route".
Decision = Optional[Tuple[str, int, int, int, int, int, Optional["FastTxPort"]]]


class FastSimSwitch(SimSwitch):
    """Hot-path :class:`SimSwitch` used by the overhauled engine.

    The data path is a faithful transcription of the reference
    ``receive``/``on_sent`` with the per-packet overheads removed:

    - one *decision cache*: ``(dst, flow_id, tag, in_port)`` maps to the
      precomputed ``(next_hop, out_port, in_queue, new_tag,
      egress_queue)`` tuple (``None`` caches "no route"), collapsing the
      route lookup, egress-port resolution, both queue classifications
      and the tag rewrite into a single dict probe. The cache is keyed
      on the forwarding table's ``version``, the network's
      ``_pinned_version`` and the live pipeline object, so mid-run table
      edits (convergence replays, injected loops), flow re-pins and
      pipeline swaps (recovery rollouts, rule rollout epochs — the only
      sanctioned ways to change rules mid-run) all behave exactly as
      uncached lookups;
    - flat-indexed :class:`VectorAccounting` with the charge/release
      arithmetic for both threshold modes inlined into the packet path
      (no :class:`CrossingResult`, no call frame) — the dynamic alpha
      formula evaluates against the accounting's cached scalars in the
      reference order (cap pre-charge, XOFF post-charge);
    - quarantine demotion stays a per-packet check — recovery mutates
      ``net.quarantined`` mid-run.

    Every metrics, tracer and PFC side effect fires in the reference
    order — the equivalence suite diffs full traces to hold this class
    to byte-identity.
    """

    __slots__ = (
        "_acct", "_decisions", "_table_version", "_pinned_seen",
        "_cls_pipeline", "_occ_list", "_paused_list", "_stride", "_static",
        "_cap_bytes", "_xoff", "_lossy_cap", "_alpha", "_shared", "_floor",
        "_headroom",
    )

    def __init__(
        self,
        net: "SimNetwork",
        name: str,
        pipeline: PipelineConfig,
    ) -> None:
        super().__init__(net, name, pipeline)
        self._acct = VectorAccounting(net.config)
        self.accounting = self._acct
        # Accounting arrays and threshold scalars, re-cached on the
        # switch itself: ``_grow`` extends the lists in place (identity
        # is stable) and the config is frozen, so these never go stale.
        acct = self._acct
        self._occ_list = acct._occ
        self._paused_list = acct._paused
        self._stride = acct._stride
        self._static = acct._static
        self._cap_bytes = acct._cap_bytes
        self._xoff = acct._xoff
        self._lossy_cap = acct._lossy_cap
        self._alpha = acct._alpha
        self._shared = acct._shared
        self._floor = acct._floor
        self._headroom = acct._headroom
        self._decisions: Dict[Tuple[str, int, int, int], Decision] = {}
        self._table_version = -1
        self._pinned_seen = -1
        self._cls_pipeline: Optional[PipelineConfig] = None

    def _decide(
        self, dst: str, flow_id: int, tag: int, in_port: int
    ) -> Decision:
        """Replay the reference forwarding computation (pure part only)."""
        net = self.net
        next_hop: Optional[str] = None
        if net._pinned:
            next_hop = net.pinned_next_hop(flow_id, self.name, dst=dst)
        if next_hop is None:
            try:
                next_hop = net.table.next_hop(
                    self.name, dst, flow_hash=flow_id
                )
            except RoutingError:
                return None
        out_port = net.topo.port_to(self.name, next_hop)
        pipeline = self.pipeline
        in_queue = pipeline.classify_ingress(tag)
        if net.topo.node(next_hop).is_host:
            # Delivery hop: keep the tag onto the host link (plans built
            # from switch-level ELP paths have no host-egress rules; the
            # safeguard default must not demote deliveries).
            new_tag = tag
        else:
            new_tag = pipeline.rewrite(tag, in_port, out_port)
        egress_queue = pipeline.classify_egress(tag, new_tag)
        # Flat accounting index and egress port object, resolved once
        # per cached decision: the accounting arrays only ever grow in
        # place and ports never change after wiring, so both stay valid
        # for the cache's lifetime (the cache clears on table/pipeline
        # swaps anyway).
        idx = in_port * self._stride + in_queue
        if idx >= len(self._occ_list):
            self._acct._grow(idx)
        port = self.tx_ports[out_port]
        fport = port if type(port) is FastTxPort else None
        return (next_hop, out_port, in_queue, new_tag, egress_queue, idx, fport)

    def receive(self, packet: Packet, in_port: int) -> None:
        net = self.net
        metrics = net.metrics
        tracer = net.tracer
        if tracer is not None:
            self._trace(packet, "receive", f"in_port={in_port}")
        packet.ttl -= 1
        packet.hops += 1
        if packet.ttl <= 0:
            metrics.record_drop(DROP_TTL, packet.flow_id)
            if tracer is not None:
                self._trace(packet, "drop", DROP_TTL)
            return

        decisions = self._decisions
        if (
            net.table.version != self._table_version
            or net._pinned_version != self._pinned_seen
        ):
            decisions.clear()
            self._table_version = net.table.version
            self._pinned_seen = net._pinned_version
        pipeline = self.pipeline
        if pipeline is not self._cls_pipeline:
            # Pipeline swapped mid-run (recovery rollout): reset cache.
            self._cls_pipeline = pipeline
            decisions.clear()
        tag = packet.tag
        key = (packet.dst, packet.flow_id, tag, in_port)
        hit = decisions.get(key, _MISS)
        if hit is _MISS:
            hit = self._decide(packet.dst, packet.flow_id, tag, in_port)
            decisions[key] = hit
        if hit is None:
            metrics.record_drop(DROP_NO_ROUTE, packet.flow_id)
            if tracer is not None:
                self._trace(packet, "drop", DROP_NO_ROUTE)
            return
        next_hop, out_port, in_queue, new_tag, egress_queue, idx, fport = hit

        # Ingress charge, inlined from VectorAccounting.charge_code.
        # Static thresholds read the cached scalars; dynamic thresholds
        # evaluate the alpha formula inline with the reference's exact
        # order (cap from the pre-charge pool, XOFF re-evaluated after
        # ``lossless_total`` moves). ``idx`` was resolved (and the
        # arrays grown past it) when the decision was cached.
        acct = self._acct
        size = packet.size
        occ_list = self._occ_list
        occ = occ_list[idx] + size
        if in_queue == LOSSY_QUEUE:
            if occ > self._lossy_cap:
                code = CHARGE_REJECT
            else:
                occ_list[idx] = occ
                code = CHARGE_ACCEPT
        else:
            static = self._static
            base_xoff = self._xoff
            if static:
                cap = self._cap_bytes
            else:
                free = self._shared - acct.lossless_total
                dyn = int(self._alpha * free)
                xoff = dyn if dyn < base_xoff else base_xoff
                if xoff < self._floor:
                    xoff = self._floor
                cap = xoff + self._headroom
            if occ > cap:
                code = CHARGE_REJECT
            else:
                occ_list[idx] = occ
                acct.lossless_total += size
                if static:
                    xoff = base_xoff
                else:
                    free = self._shared - acct.lossless_total
                    dyn = int(self._alpha * free)
                    xoff = dyn if dyn < base_xoff else base_xoff
                    if xoff < self._floor:
                        xoff = self._floor
                paused = self._paused_list
                if occ >= xoff and not paused[idx]:
                    paused[idx] = True
                    code = CHARGE_ACCEPT_PAUSE
                else:
                    code = CHARGE_ACCEPT
        if code == CHARGE_REJECT:
            reason = DROP_LOSSY if in_queue == LOSSY_QUEUE else DROP_LOSSLESS
            metrics.record_drop(reason, packet.flow_id)
            if tracer is not None:
                self._trace(packet, "drop", reason)
            return
        if code == CHARGE_ACCEPT_PAUSE:
            net.send_pfc(self.name, in_port, in_queue, pause=True)

        if new_tag != tag:
            metrics.record_demotion(
                net.sim.now, self.name, tag, new_tag, packet.flow_id
            )
        if (
            net.quarantined
            and egress_queue != LOSSY_QUEUE
            and (self.name, out_port, egress_queue) in net.quarantined
        ):
            metrics.record_demotion(
                net.sim.now, self.name, new_tag, LOSSY_TAG, packet.flow_id
            )
            new_tag = LOSSY_TAG
            egress_queue = LOSSY_QUEUE
        packet.tag = new_tag
        packet.in_port = in_port
        packet.in_queue = in_queue
        if tracer is not None:
            self._trace(
                packet,
                "forward",
                f"-> {next_hop} tag {tag}->{new_tag} q{egress_queue}",
            )
        port = fport
        if port is None:
            self.tx_ports[out_port].enqueue(packet, egress_queue)
            return
        # FastTxPort.enqueue, inlined (the per-hop handoff is the
        # hottest cross-object call in the simulator).
        packet.egress_queue = egress_queue
        queues = port.queues
        fifo = queues.get(egress_queue)
        if fifo is None:
            fifo = deque()
            queues[egress_queue] = fifo
            port.queued_bytes[egress_queue] = 0
            port._qids.append(egress_queue)
            port._qids.sort()
        queued = port.queued_bytes[egress_queue]
        threshold = port._ecn_threshold
        if threshold is not None and queued > threshold:
            packet.ecn = True
        fifo.append(packet)
        port.queued_bytes[egress_queue] = queued + size
        if port.busy or not port.link_up:
            return
        paused = port._pauseset
        rr_last = port._rr_last
        pick = -1
        first = -1
        for q in port._qids:
            if not queues[q] or q in paused:
                continue
            if q > rr_last:
                pick = q
                break
            if first < 0:
                first = q
        if pick < 0:
            if first < 0:
                return
            pick = first
        head = queues[pick].popleft()
        port.queued_bytes[pick] -= head.size
        port._rr_last = pick
        port.busy = True
        port._tx_packet = head
        wsim = port._wsim
        if wsim is None:
            port._schedule(head.size * 8.0 / port._bw, port._complete_cb)
            return
        # WheelSimulator.schedule, inlined.
        time = wsim.now + head.size * 8.0 / port._bw
        seq = wsim._seq
        wsim._seq = seq + 1
        event = (time, seq, port._complete_cb)
        slot = int(time / wsim._res)
        cur = wsim._cur_slot
        if slot <= cur:
            insort(wsim._active, event, wsim._active_pos)
        elif slot < cur + wsim._nslots:
            cell = wsim._ring[slot % wsim._nslots]
            if not cell:
                heappush(wsim._slot_heap, slot)
            cell.append(event)
            wsim._ring_count += 1
        else:
            heappush(wsim._overflow, event)

    def on_sent(self, packet: Packet) -> None:
        in_port = packet.in_port
        in_queue = packet.in_queue
        assert in_port is not None and in_queue is not None
        # Release, inlined from VectorAccounting.release_code.
        acct = self._acct
        size = packet.size
        idx = in_port * acct._stride + in_queue
        occ_list = acct._occ
        if idx >= len(occ_list):
            acct._grow(idx)
        occ = occ_list[idx]
        if size > occ:
            raise AssertionError(
                f"ingress accounting underflow on {(in_port, in_queue)}: "
                f"{occ} - {size}"
            )
        occ_list[idx] = occ - size
        if in_queue != LOSSY_QUEUE:
            acct.lossless_total -= size
            if acct._paused[idx]:
                xon = acct._xon if acct._static else acct.current_xon()
                if occ - size <= xon:
                    acct._paused[idx] = False
                    self.net.send_pfc(
                        self.name, in_port, in_queue, pause=False
                    )
