"""Packets and simulation-wide configuration constants."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.core.tags import INITIAL_TAG

# Fallback id source for packets built without an explicit ``packet_id``
# (direct construction in unit tests). Simulation components always pass
# ``packet_id=net.new_packet_id()`` so ids are per-fabric: two networks
# in one process number their packets identically, which the engine
# trace-equivalence suite depends on when comparing traces side by side.
_packet_ids = itertools.count()


class Packet:
    """One simulated packet.

    ``tag`` mutates as switches rewrite it (the DSCP field in the real
    implementation); ``ttl`` decrements per switch hop. The
    ``in_port``/``in_queue`` fields record where the packet is charged at
    its *current* switch (for PFC accounting release and for the runtime
    wait-for graph); they are rewritten at each hop.

    A ``__slots__`` class rather than a dataclass: millions of packets
    are allocated per run, and slots cut both the per-instance footprint
    (no ``__dict__``) and the attribute-access cost on every hop.
    """

    __slots__ = (
        "flow_id", "src", "dst", "size", "tag", "ttl", "packet_id",
        "created_at", "kind", "psn", "ecn", "in_port", "in_queue",
        "egress_queue", "hops",
    )

    def __init__(
        self,
        flow_id: int,
        src: str,
        dst: str,
        size: int,
        tag: int = INITIAL_TAG,
        ttl: int = 64,
        packet_id: Optional[int] = None,
        created_at: float = 0.0,
        # Transport-layer fields (used by repro.simulator.transport).
        kind: str = "data",  # "data" | "ack" | "nack" | "cnp"
        psn: int = -1,       # packet sequence number; -1 = unsequenced
        ecn: bool = False,   # congestion-experienced mark (set by switches)
        # Per-hop bookkeeping (owned by the current switch).
        in_port: Optional[int] = None,
        in_queue: Optional[int] = None,
        egress_queue: Optional[int] = None,
        hops: int = 0,
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.tag = tag
        self.ttl = ttl
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        self.created_at = created_at
        self.kind = kind
        self.psn = psn
        self.ecn = ecn
        self.in_port = in_port
        self.in_queue = in_queue
        self.egress_queue = egress_queue
        self.hops = hops

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.packet_id} flow={self.flow_id} "
            f"{self.src}->{self.dst} tag={self.tag} ttl={self.ttl})"
        )


@dataclass(frozen=True)
class SimConfig:
    """Fabric-wide simulation parameters.

    Defaults model a scaled-down RoCE fabric: the paper's testbed runs
    40 Gb/s links, which at packet granularity is too fine for a Python
    DES over multi-second windows, so the default link rate is 1 Gb/s
    with 4 KB packets — PFC dynamics (threshold crossings, pause
    propagation, CBD formation) are unchanged, only the wall-clock axis
    scales. All byte thresholds are per ingress (port, priority) queue.

    Attributes:
        bandwidth_bps: Link rate in bits per second.
        prop_delay: Per-link propagation delay (seconds).
        pfc_delay: Delay for a PFC PAUSE/RESUME frame to take effect.
        xoff_bytes: Ingress occupancy that triggers PAUSE upstream.
        xon_bytes: Occupancy at which RESUME is sent.
        headroom_bytes: Extra lossless capacity above XOFF for in-flight
            packets; the hard cap is ``xoff + headroom`` and a lossless
            drop beyond it indicates a broken configuration (Fig. 8a).
        lossy_cap_bytes: Hard cap per lossy ingress queue (tail drop).
        default_ttl: Initial packet TTL.
        injection_jitter: Upper bound (seconds) of the uniform random
            delay added to each host packet injection. Models host-stack
            timing noise; without it the fully deterministic simulator
            phase-locks into periodic orbits that can dodge deadlocks a
            real fabric falls into.
        seed: RNG seed for jitter and any other randomized choices.
    """

    bandwidth_bps: float = 1e9
    prop_delay: float = 1e-6
    pfc_delay: float = 2e-6
    xoff_bytes: int = 40 * 1024
    xon_bytes: int = 24 * 1024
    headroom_bytes: int = 48 * 1024
    lossy_cap_bytes: int = 64 * 1024
    default_ttl: int = 64
    injection_jitter: float = 0.0
    seed: int = 1
    # Dynamic shared-buffer thresholds (Broadcom-style alpha model).
    # When enabled, each lossless account's XOFF becomes
    #   alpha * (shared_buffer - total lossless occupancy on the switch)
    # clamped to [dt_floor_bytes, xoff_bytes], and XON tracks it at a
    # fixed offset. As a switch's buffers fill, *all* its accounts pause
    # earlier and resume later — the ratchet that lets production
    # fabrics slide into deadlock without an external trigger.
    dynamic_thresholds: bool = False
    dt_alpha: float = 1.0
    shared_buffer_bytes: int = 192 * 1024
    dt_xon_offset_bytes: int = 16 * 1024
    dt_floor_bytes: int = 8 * 1024
    # ECN marking (for DCQCN-style congestion control). None = disabled;
    # otherwise packets enqueued into an egress queue holding more than
    # this many bytes are marked congestion-experienced.
    ecn_threshold_bytes: Optional[int] = None

    @property
    def lossless_cap_bytes(self) -> int:
        return self.xoff_bytes + self.headroom_bytes

    def tx_time(self, size_bytes: int) -> float:
        """Serialization delay for a packet of ``size_bytes``."""
        return size_bytes * 8.0 / self.bandwidth_bps

    @staticmethod
    def paper_testbed() -> "SimConfig":
        """Parameters matching the paper's 40 Gb/s Arista testbed scale.

        40x the default link rate, with thresholds/headroom scaled so the
        PFC reaction headroom still covers the bandwidth-delay product
        (~15 KB in flight during a 3 us pause response at 40 Gb/s).
        Simulations at this rate are ~40x more expensive per simulated
        second — use short horizons or ``REPRO_FULL`` benches.
        """
        return SimConfig(
            bandwidth_bps=40e9,
            prop_delay=1e-6,
            pfc_delay=2e-6,
            xoff_bytes=160 * 1024,
            xon_bytes=96 * 1024,
            headroom_bytes=192 * 1024,
            lossy_cap_bytes=256 * 1024,
        )
