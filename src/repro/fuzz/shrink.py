"""Counterexample minimization (delta debugging) for failing scenarios.

Given a scenario whose cross-check produced violations, the shrinker
searches for the smallest scenario that still reproduces at least one of
the *same* invariant violations:

1. the generated ELP is materialized into an explicit path list and
   reduced with ddmin (classic delta debugging over path subsets);
2. mutations (failed links, express circuits) are dropped one at a time;
3. Clos topology parameters are walked downward one step at a time,
   keeping only paths that still exist in the smaller fabric.

The result is what gets committed to ``tests/corpus/`` — small enough
to read, fast enough to replay in CI forever.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.fuzz.crosscheck import cross_check
from repro.fuzz.scenarios import Scenario
from repro.routing.base import Path, validate_path

#: Predicate: does this scenario still reproduce the target violation?
Predicate = Callable[[Scenario], bool]


def _still_fails(
    scenario: Scenario, fault: Optional[str], targets: frozenset
) -> bool:
    try:
        result = cross_check(scenario, fault=fault)
    except ReproError:
        # A shrink step that makes the scenario unbuildable is a bad
        # shrink, not a reproduction.
        return False
    return bool(targets.intersection(result.invariants_violated()))


def ddmin(
    items: Sequence,
    predicate: Callable[[List], bool],
    max_rounds: int = 64,
) -> List:
    """Classic ddmin: smallest sublist (not necessarily minimal set) for
    which ``predicate`` still holds. ``predicate(items)`` must be True."""
    current = list(items)
    granularity = 2
    rounds = 0
    while len(current) >= 2 and rounds < max_rounds:
        rounds += 1
        chunk = max(1, len(current) // granularity)
        reduced = False
        # Try keeping each single chunk, then each complement.
        subsets = [
            current[i : i + chunk] for i in range(0, len(current), chunk)
        ]
        for subset in subsets:
            if len(subset) < len(current) and predicate(subset):
                current = subset
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        for i in range(0, len(current), chunk):
            complement = current[:i] + current[i + chunk :]
            if complement and predicate(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if reduced:
            continue
        if granularity >= len(current):
            break
        granularity = min(len(current), granularity * 2)
    return current


def _paths_valid_in(scenario: Scenario, paths: Sequence[Path]) -> List[Path]:
    """Filter paths down to the ones that still exist in the topology."""
    try:
        topo = scenario.build_topology()
    except ReproError:
        return []
    kept = []
    for path in paths:
        try:
            validate_path(topo, path, allow_failed=True)
        except ReproError:
            continue
        kept.append(tuple(path))
    return kept


_CLOS_PARAM_FLOORS = {
    "num_pods": 1,
    "tors_per_pod": 1,
    "leaves_per_pod": 1,
    "num_spines": 1,
    "hosts_per_tor": 0,
}


def shrink_scenario(
    scenario: Scenario,
    fault: Optional[str] = None,
    targets: Optional[Sequence[str]] = None,
) -> Tuple[Scenario, List[str]]:
    """Minimize a failing scenario; returns (shrunk scenario, violations).

    ``targets`` defaults to the invariants the unshrunk scenario violates;
    shrinking preserves at least one of them.
    """
    baseline = cross_check(scenario, fault=fault)
    if targets is None:
        targets = baseline.invariants_violated()
    target_set = frozenset(targets)
    if not target_set:
        raise ReproError(
            f"scenario {scenario.scenario_id} has no violation to shrink"
        )

    # 1. Pin the generated ELP down to an explicit, reducible path list.
    topo = scenario.build_topology()
    paths = [tuple(p) for p in scenario.build_elp(topo).paths]
    current = scenario.with_paths(paths)
    if not _still_fails(current, fault, target_set):
        # Explicitification changed nothing semantically, but be safe.
        current = scenario
    else:
        shrunk_paths = ddmin(
            paths,
            lambda subset: _still_fails(
                current.with_paths(list(subset)), fault, target_set
            ),
        )
        current = current.with_paths(shrunk_paths)

    # 2. Drop sampled mutations that aren't load-bearing.
    for attr in ("failed_links", "express_pairs"):
        entries = list(getattr(current, attr))
        for entry in list(entries):
            trial_entries = [e for e in entries if e != entry]
            trial = replace(current, **{attr: trial_entries})
            if current.explicit_paths is not None:
                trial = trial.with_paths(
                    _paths_valid_in(trial, current.explicit_paths)
                )
            if trial.explicit_paths is not None and not trial.explicit_paths:
                continue
            if _still_fails(trial, fault, target_set):
                entries = trial_entries
                current = trial
        setattr(current, attr, entries)

    # 3. Walk Clos parameters downward while the failure persists.
    if current.kind in ("clos", "express"):
        current = _shrink_clos_params(current, fault, target_set)

    final = cross_check(current, fault=fault)
    return current, final.invariants_violated()


def _shrink_clos_params(
    scenario: Scenario, fault: Optional[str], target_set: frozenset
) -> Scenario:
    current = scenario
    progress = True
    while progress:
        progress = False
        for param, floor in _CLOS_PARAM_FLOORS.items():
            value = current.topo_params.get(param)
            if value is None or value <= floor:
                continue
            params = dict(current.topo_params)
            params[param] = value - 1
            trial = replace(current, topo_params=params)
            if current.explicit_paths is not None:
                kept = _paths_valid_in(trial, current.explicit_paths)
                if not kept:
                    continue
                trial = trial.with_paths(kept)
            if _still_fails(trial, fault, target_set):
                current = trial
                progress = True
    return current
