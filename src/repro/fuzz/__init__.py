"""Differential fuzzing of the tagging algorithms against each other and
against the simulator's dynamic deadlock oracle.

Theorem 5.1 (R1 per-tag acyclicity + R2 tag monotonicity) is the entire
safety argument of Tagger. This package stress-tests it end to end:

- :mod:`repro.fuzz.scenarios` — seeded generator of random topologies
  (Clos with failures, Jellyfish, BCube, express-link fabrics) plus
  random ELP sets;
- :mod:`repro.fuzz.crosscheck` — runs brute-force, greedy, deterministic
  and (where applicable) Clos taggers on the same ELP and asserts the
  differential invariants (everything verifies, greedy never beats
  brute force on safety while never using more tags, Clos uses exactly
  ``k + 1`` tags, compiled rules agree with the tagged graph);
- :mod:`repro.fuzz.oracle` — replays scenarios through the packet-level
  simulator: tagged configs must never deadlock, deliberately untagged
  control runs on CBD-prone path pairs must (oracle sensitivity);
- :mod:`repro.fuzz.faults` — artificial tagger bugs (skip R2, collapse
  tags, ignore bounces) used to prove the harness actually catches
  regressions;
- :mod:`repro.fuzz.shrink` — delta-debugging counterexample minimizer;
- :mod:`repro.fuzz.corpus` — committed regression corpus
  (``tests/corpus/``) replayed by ``tests/fuzz/test_corpus.py``;
- :mod:`repro.fuzz.harness` — the orchestrator behind
  ``repro-tagger fuzz``.
"""

from repro.fuzz.corpus import CorpusEntry, load_corpus, save_entry
from repro.fuzz.crosscheck import CrossCheckResult, Violation, cross_check
from repro.fuzz.faults import FAULTS, FaultError
from repro.fuzz.harness import FuzzConfig, FuzzReport, replay_entry, run_fuzz
from repro.fuzz.oracle import OracleOutcome, find_cbd_pairs, run_oracle
from repro.fuzz.scenarios import Scenario, ScenarioGenerator
from repro.fuzz.shrink import shrink_scenario

__all__ = [
    "CorpusEntry",
    "load_corpus",
    "save_entry",
    "CrossCheckResult",
    "Violation",
    "cross_check",
    "FAULTS",
    "FaultError",
    "FuzzConfig",
    "FuzzReport",
    "replay_entry",
    "run_fuzz",
    "OracleOutcome",
    "find_cbd_pairs",
    "run_oracle",
    "Scenario",
    "ScenarioGenerator",
    "shrink_scenario",
]
