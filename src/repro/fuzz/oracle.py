"""Dynamic oracle: replay fuzz scenarios through the PFC simulator.

The static verifier says a tagged graph *cannot* deadlock; the simulator
is an independent implementation of PFC physics that can say whether a
concrete run *does*. The oracle stage cross-checks the two:

- **safety**: a fabric deploying the Tagger plan for the scenario must
  never reach a wait-for cycle, no matter the trigger;
- **sensitivity**: the deliberately untagged control run of the same
  trigger must deadlock — otherwise the oracle is too blunt for its
  "no deadlock" verdicts to mean anything.

The trigger is the paper's Fig. 10 recipe generalized: pick two ELP
paths that form a CBD (statically, via :func:`repro.analysis.has_cbd`),
pin one deep-windowed closed-loop flow along each, and briefly throttle
the first flow's receiver so PFC backpressure fills the cycle. A static
CBD is necessary but not *sufficient* for a dynamic deadlock (the DCFIT
observation: deadlocks hinge on reachable initial triggers), so several
candidate pairs are tried until one deadlocks the control run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

from repro.analysis import has_cbd
from repro.core.planner import TaggerPlan
from repro.core.elp import ElpSet
from repro.exceptions import ReproError
from repro.fuzz.scenarios import Scenario
from repro.routing.base import Path
from repro.routing.shortest import shortest_path_tables
from repro.simulator import Flow, SimNetwork, find_deadlock_cycle, pin_path
from repro.topology.base import Topology

#: One flow leg: (src_host, dst_host, host-to-host pinned path).
Leg = Tuple[str, str, Path]


@dataclass
class OracleOutcome:
    """Result of one simulator replay (control + tagged runs)."""

    ran: bool
    reason: str = ""
    pairs_tried: int = 0
    #: The CBD pair that deadlocked the control run (None = all missed).
    trigger_pair: Optional[Tuple[Path, Path]] = None
    control_deadlocked: bool = False
    #: Tagged-run verdicts, one per pair replayed (all must be False).
    tagged_deadlocks: List[bool] = field(default_factory=list)
    tagged_lossless_drops: int = 0

    @property
    def sensitive(self) -> bool:
        """Did some untagged control run reproduce the deadlock?"""
        return self.control_deadlocked

    @property
    def tagged_deadlocked(self) -> bool:
        return any(self.tagged_deadlocks)


def find_cbd_pairs(
    topo: Topology,
    paths: Sequence[Path],
    max_pairs: int = 8,
    max_checks: int = 600,
) -> List[Tuple[Path, Path]]:
    """Up to ``max_pairs`` distinct ELP path pairs whose buffers form a CBD.

    Longer paths are tried first (bounce paths are what close cycles in
    practice); the search is capped so pathological ELPs stay cheap.
    """
    ranked = sorted(set(paths), key=lambda p: (-len(p), p))
    found: List[Tuple[Path, Path]] = []
    checks = 0
    for p1, p2 in combinations(ranked, 2):
        checks += 1
        if checks > max_checks or len(found) >= max_pairs:
            break
        if has_cbd(topo, [p1, p2]):
            found.append((p1, p2))
    return found


def _host_endpoints(topo: Topology, path: Path) -> Optional[Leg]:
    """Extend a switch-level path with attached hosts on both ends.

    Returns ``(src_host, dst_host, host_to_host_path)`` or None when an
    endpoint has no host (the simulator needs hosts to source traffic).
    """
    full = list(path)
    if topo.node(full[0]).is_host:
        src = full[0]
    else:
        hosts = [
            peer
            for peer in sorted(topo.neighbors(full[0]))
            if topo.node(peer).is_host
        ]
        if not hosts:
            return None
        src = hosts[0]
        full = [src] + full
    if topo.node(full[-1]).is_host:
        dst = full[-1]
    else:
        hosts = [
            peer
            for peer in sorted(topo.neighbors(full[-1]))
            if topo.node(peer).is_host and peer != src
        ]
        if not hosts:
            return None
        dst = hosts[0]
        full = full + [dst]
    if src == dst:
        return None
    return src, dst, tuple(full)


def _drive(
    net: SimNetwork, legs: Sequence[Leg], duration: float
) -> None:
    """Pin one closed-loop flow per leg and run the throttle trigger."""
    for i, (src, dst, full) in enumerate(legs):
        net.add_flow(
            Flow(
                src=src,
                dst=dst,
                start=0.01 * i,
                # A deep window keeps enough packets in flight to fill
                # every buffer on the cycle once the throttle bites.
                window=32,
                pinned_next_hops=pin_path(full),
            )
        )
    throttle_host = legs[0][1]  # first leg's receiver, as in Fig. 10
    net.at(0.05, lambda: net.set_receiver_rate(throttle_host, 5e7))
    net.at(0.08, lambda: net.set_receiver_rate(throttle_host, None))
    net.run(duration)


def _plan_for(scenario: Scenario, topo: Topology, elp: ElpSet) -> TaggerPlan:
    budget = scenario.clos_bounce_budget
    if budget is not None:
        return TaggerPlan.for_clos(topo, max_bounces=budget)
    return TaggerPlan.from_elp(topo, elp.paths)


def run_oracle(
    scenario: Scenario,
    topo: Optional[Topology] = None,
    elp: Optional[ElpSet] = None,
    duration: float = 0.2,
    max_pairs: int = 8,
) -> OracleOutcome:
    """Replay one scenario through the simulator, control then tagged.

    Control runs (plain PFC) are tried over up to ``max_pairs`` candidate
    CBD pairs until one deadlocks; the tagged run replays every tried
    pair and must never deadlock. Skips (with a reason) when no CBD pair
    exists in the ELP or no pair's endpoints have hosts.
    """
    if topo is None:
        topo = scenario.build_topology()
    if elp is None:
        elp = scenario.build_elp(topo)
    pairs = find_cbd_pairs(topo, list(elp.paths), max_pairs=max_pairs)
    if not pairs:
        return OracleOutcome(ran=False, reason="no CBD-forming path pair in ELP")

    viable: List[Tuple[Tuple[Path, Path], List[Leg]]] = []
    for pair in pairs:
        legs = [_host_endpoints(topo, path) for path in pair]
        if all(leg is not None for leg in legs):
            viable.append((pair, legs))
    if not viable:
        return OracleOutcome(
            ran=False, reason="no CBD pair with hosts at both endpoints"
        )

    table = shortest_path_tables(topo)
    trigger_pair: Optional[Tuple[Path, Path]] = None
    tried: List[Tuple[Tuple[Path, Path], List[Leg]]] = []
    for pair, legs in viable:
        tried.append((pair, legs))
        control = SimNetwork(topo, table)
        _drive(control, legs, duration)
        if find_deadlock_cycle(control) is not None:
            trigger_pair = pair
            break

    try:
        plan = _plan_for(scenario, topo, elp)
    except ReproError as exc:
        return OracleOutcome(
            ran=True,
            reason=f"no plan for scenario: {exc}",
            pairs_tried=len(tried),
            trigger_pair=trigger_pair,
            control_deadlocked=trigger_pair is not None,
        )
    tagged_deadlocks: List[bool] = []
    lossless_drops = 0
    for pair, legs in tried:
        tagged = SimNetwork.with_plan(topo, shortest_path_tables(topo), plan)
        _drive(tagged, legs, duration)
        tagged_deadlocks.append(find_deadlock_cycle(tagged) is not None)
        lossless_drops += tagged.metrics.drops.get("lossless_overflow", 0)
    return OracleOutcome(
        ran=True,
        pairs_tried=len(tried),
        trigger_pair=trigger_pair,
        control_deadlocked=trigger_pair is not None,
        tagged_deadlocks=tagged_deadlocks,
        tagged_lossless_drops=lossless_drops,
    )
