"""Fuzzing orchestrator: generate -> cross-check -> oracle -> shrink.

:func:`run_fuzz` is what ``repro-tagger fuzz`` drives. Each iteration
draws one scenario from the seeded generator, runs the static
differential cross-check (optionally with an injected fault, to prove
the harness catches regressions), and — within a configurable budget —
replays CBD-prone scenarios through the simulator oracle. Failing
scenarios are shrunk with delta debugging and persisted to the
regression corpus.

The report is JSON-serializable so CI and humans consume the same
artifact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.fuzz.corpus import CorpusEntry, save_entry
from repro.fuzz.crosscheck import cross_check
from repro.fuzz.faults import check_fault_name
from repro.fuzz.oracle import (
    OracleOutcome,
    _host_endpoints,
    find_cbd_pairs,
    run_oracle,
)
from repro.fuzz.scenarios import Scenario, ScenarioGenerator
from repro.fuzz.shrink import shrink_scenario
from repro.obs.events import EV_FUZZ_SCENARIO, EV_FUZZ_VIOLATION
from repro.obs.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.detect.matrix import MatrixOutcome

#: Oracle invariants (layered on top of the cross-check table).
ORACLE_TAGGED_DEADLOCK = "oracle-tagged-deadlock"
ORACLE_INSENSITIVE = "oracle-insensitive"

#: Detection-matrix invariants (18 and 19, layered like the oracle's).
#: 18 — with Tagger disabled, every oracle-confirmed deadlock must be
#: confirmed by the local detector within the matrix latency bound and
#: quarantine must restore forward progress.
DETECT_LATENCY = "detect-latency"
#: 19 — on runs whose ground truth shows no cycle (transient congestion
#: only), the detector must report zero confirmations.
DETECT_FALSE_POSITIVE = "detect-false-positive"


@dataclass
class FuzzConfig:
    """Knobs for one fuzzing run."""

    seed: int = 7
    iterations: int = 50
    #: Max scenarios replayed through the simulator (0 disables the stage).
    oracle_budget: int = 3
    #: Wall-clock cap in seconds (None = unlimited); checked per iteration.
    time_budget: Optional[float] = None
    shrink: bool = True
    #: Artificial bug injected into every iteration (harness self-test).
    inject_fault: Optional[str] = None
    #: Where shrunk counterexamples are written (None = don't persist).
    corpus_dir: Optional[str] = None
    #: Treat a non-deadlocking untagged control run as a violation.
    strict_oracle: bool = False
    oracle_duration: float = 0.2
    #: Max scenarios run through the head-to-head detection matrix
    #: (Tagger-on vs detection-only vs both; 0 disables the stage).
    detect_budget: int = 0
    detect_duration: float = 0.3
    #: Worker processes for the scenario sweep (1 = the serial loop).
    #: Any count produces the identical report (modulo
    #: ``elapsed_seconds``); with more than one worker the wall-clock
    #: time budget is enforced at chunk boundaries rather than per
    #: iteration.
    workers: int = 1

    def __post_init__(self) -> None:
        if self.inject_fault is not None:
            check_fault_name(self.inject_fault)


@dataclass
class FuzzReport:
    """Machine-readable outcome of one fuzzing run."""

    config: FuzzConfig
    iterations_run: int = 0
    scenarios_by_kind: Dict[str, int] = field(default_factory=dict)
    invariant_checks: int = 0
    violations: List[Dict[str, Any]] = field(default_factory=list)
    oracle_runs: int = 0
    oracle_skips: int = 0
    oracle_control_deadlocks: int = 0
    oracle_misses: List[str] = field(default_factory=list)
    detect_runs: int = 0
    detect_skips: int = 0
    detect_deadlocks: int = 0
    detect_matrix: List[Dict[str, Any]] = field(default_factory=list)
    corpus_entries: List[CorpusEntry] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Optional observability hookup (pure observer; not serialized).
    #: Every recorded violation also becomes a ``fuzz.violation`` event
    #: plus a per-invariant counter via :meth:`note_violation`, the one
    #: choke point all violation appends go through.
    telemetry: Optional[Telemetry] = field(
        default=None, repr=False, compare=False
    )

    def note_violation(
        self, scenario_id: str, invariant: str, detail: str, now: float = 0.0
    ) -> None:
        self.violations.append(
            {
                "scenario_id": scenario_id,
                "invariant": invariant,
                "detail": detail,
            }
        )
        if self.telemetry is not None:
            self.telemetry.emit(
                EV_FUZZ_VIOLATION,
                time=now,
                scenario=scenario_id,
                invariant=invariant,
            )
            self.telemetry.registry.counter(
                "fuzz_violations_total",
                "Invariant violations found, by invariant.",
                labelnames=("invariant",),
            ).inc(invariant=invariant)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def fault_caught(self) -> bool:
        """With an injected fault: did at least one iteration fire?"""
        return bool(self.violations)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.config.seed,
            "iterations": self.iterations_run,
            "inject_fault": self.config.inject_fault,
            "scenarios_by_kind": dict(sorted(self.scenarios_by_kind.items())),
            "invariant_checks": self.invariant_checks,
            "violations": self.violations,
            "oracle": {
                "runs": self.oracle_runs,
                "skips": self.oracle_skips,
                "control_deadlocks": self.oracle_control_deadlocks,
                "misses": self.oracle_misses,
            },
            "detect": {
                "runs": self.detect_runs,
                "skips": self.detect_skips,
                "deadlocks": self.detect_deadlocks,
                "matrix": self.detect_matrix,
            },
            "corpus_entries": [
                {"id": e.entry_id, "path": e.path, "violations": e.violations}
                for e in self.corpus_entries
            ],
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "ok": self.ok,
        }

    def summary(self) -> str:
        verdict = "CLEAN" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        kinds = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.scenarios_by_kind.items())
        )
        return (
            f"{verdict}: {self.iterations_run} scenario(s) [{kinds}], "
            f"{self.invariant_checks} invariant checks, oracle "
            f"{self.oracle_runs} run(s) / {self.oracle_control_deadlocks} "
            f"control deadlock(s), detect matrix {self.detect_runs} "
            f"run(s) / {self.detect_deadlocks} deadlock(s), "
            f"{len(self.corpus_entries)} corpus "
            f"entr(y/ies), {self.elapsed_seconds:.1f}s"
        )


#: Static invariants evaluated per scenario (for the checks counter).
_CHECKS_PER_SCENARIO = 17


def run_fuzz(
    config: FuzzConfig, telemetry: Optional[Telemetry] = None
) -> FuzzReport:
    """Run the full differential fuzzing loop.

    With ``config.workers > 1`` the scenario sweep fans out over a
    forked pool (:mod:`repro.simulator.sweep`); the report is identical
    to the serial run's, modulo ``elapsed_seconds``.
    """
    if config.workers > 1:
        return _run_fuzz_parallel(config, telemetry)
    started = time.monotonic()
    report = FuzzReport(config=config, telemetry=telemetry)
    generator = ScenarioGenerator(config.seed)
    oracle_left = config.oracle_budget
    detect_left = config.detect_budget

    for iteration in range(config.iterations):
        elapsed = time.monotonic() - started
        if config.time_budget is not None and elapsed > config.time_budget:
            break
        scenario = next(generator)
        _note_scenario(report, scenario, elapsed)

        try:
            result = cross_check(scenario, fault=config.inject_fault)
        except ReproError as exc:
            report.note_violation(
                scenario.scenario_id, "harness-error", str(exc), now=elapsed
            )
            continue
        report.invariant_checks += _CHECKS_PER_SCENARIO
        if not result.ok:
            _record_failure(report, scenario, result.invariants_violated(),
                            [str(v) for v in result.violations], iteration,
                            now=elapsed)
            continue  # don't feed a statically-broken scenario to the oracle

        if oracle_left > 0:
            outcome = run_oracle(scenario, duration=config.oracle_duration)
            if not outcome.ran:
                report.oracle_skips += 1
                if outcome.control_deadlocked:
                    report.oracle_control_deadlocks += 1
            else:
                oracle_left -= 1
                _apply_oracle_outcome(
                    report, scenario, outcome, iteration, now=elapsed
                )

        if detect_left > 0:
            detect_left -= _run_detect_stage(
                report, scenario, now=elapsed
            )

    return _finalize_report(report, telemetry, started)


def _note_scenario(
    report: FuzzReport, scenario: Scenario, elapsed: float
) -> None:
    """Count one drawn scenario and mirror it onto the telemetry bus."""
    report.iterations_run += 1
    report.scenarios_by_kind[scenario.kind] = (
        report.scenarios_by_kind.get(scenario.kind, 0) + 1
    )
    telemetry = report.telemetry
    if telemetry is not None:
        telemetry.emit(
            EV_FUZZ_SCENARIO,
            time=elapsed,
            scenario=scenario.scenario_id,
            scenario_kind=scenario.kind,
        )
        telemetry.registry.counter(
            "fuzz_scenarios_total",
            "Scenarios generated, by kind.",
            labelnames=("kind",),
        ).inc(kind=scenario.kind)


def _finalize_report(
    report: FuzzReport, telemetry: Optional[Telemetry], started: float
) -> FuzzReport:
    report.elapsed_seconds = time.monotonic() - started
    if telemetry is not None:
        telemetry.registry.counter(
            "fuzz_invariant_checks_total",
            "Static invariant evaluations performed.",
        ).inc(report.invariant_checks)
        telemetry.registry.gauge(
            "fuzz_elapsed_seconds", "Wall seconds the last fuzz run took."
        ).set(report.elapsed_seconds)
    return report


def _apply_oracle_outcome(
    report: FuzzReport,
    scenario: Scenario,
    outcome: OracleOutcome,
    iteration: int,
    now: float = 0.0,
) -> None:
    """Fold one *ran* oracle outcome into the report.

    Shared verbatim by the serial loop and the parallel fold so the two
    paths cannot drift.
    """
    config = report.config
    report.oracle_runs += 1
    if outcome.control_deadlocked:
        report.oracle_control_deadlocks += 1
    else:
        report.oracle_misses.append(scenario.scenario_id)
        if config.strict_oracle:
            report.note_violation(
                scenario.scenario_id,
                ORACLE_INSENSITIVE,
                "untagged control run with a CBD path pair "
                "did not deadlock",
                now=now,
            )
    if outcome.tagged_deadlocked:
        _record_failure(
            report,
            scenario,
            [ORACLE_TAGGED_DEADLOCK],
            [
                f"{ORACLE_TAGGED_DEADLOCK}: simulator found a "
                f"wait-for cycle under the Tagger plan "
                f"(trigger={outcome.trigger_pair}, "
                f"pairs_tried={outcome.pairs_tried})"
            ],
            iteration,
            shrinkable=False,
            now=now,
        )


def _run_detect_stage(
    report: FuzzReport, scenario: Scenario, now: float = 0.0
) -> int:
    """Run one scenario through the detection matrix; returns budget used.

    Evaluates the two dynamic detection invariants:

    - :data:`DETECT_LATENCY` (18) on the Tagger-disabled cell whenever
      the ground-truth oracle confirmed a deadlock;
    - :data:`DETECT_FALSE_POSITIVE` (19) on every cell whose ground
      truth stayed cycle-free (including the dedicated
      transient-congestion cell).
    """
    from repro.detect.matrix import detection_matrix

    config = report.config
    try:
        outcome = detection_matrix(
            scenario,
            duration=config.detect_duration,
            seed=config.seed,
        )
    except ReproError as exc:
        report.note_violation(
            scenario.scenario_id, "harness-error", str(exc), now=now
        )
        return 1
    return _apply_matrix_outcome(report, scenario, outcome, now=now)


def _apply_matrix_outcome(
    report: FuzzReport,
    scenario: Scenario,
    outcome: "MatrixOutcome",
    now: float = 0.0,
) -> int:
    """Fold one detection-matrix outcome into the report; budget used.

    Shared verbatim by the serial loop and the parallel fold so the two
    paths cannot drift.
    """
    from repro.detect.matrix import false_positive_cells

    if not outcome.ran:
        report.detect_skips += 1
        return 0
    report.detect_runs += 1
    report.invariant_checks += 2
    summary = outcome.to_dict()
    summary["scenario_id"] = scenario.scenario_id
    report.detect_matrix.append(summary)

    cell = outcome.cell("detect")
    if cell is not None and cell.oracle_deadlocked:
        report.detect_deadlocks += 1
        latency = cell.detection_latency
        if cell.confirms < 1 or latency is None:
            report.note_violation(
                scenario.scenario_id,
                DETECT_LATENCY,
                f"{DETECT_LATENCY}: oracle confirmed a deadlock at "
                f"t={cell.oracle_first_cycle_time} but the local detector "
                f"never confirmed",
                now=now,
            )
        elif latency > outcome.latency_bound:
            report.note_violation(
                scenario.scenario_id,
                DETECT_LATENCY,
                f"{DETECT_LATENCY}: detection latency {latency:.6f}s "
                f"exceeds bound {outcome.latency_bound:.6f}s",
                now=now,
            )
        elif not cell.progress_restored:
            report.note_violation(
                scenario.scenario_id,
                DETECT_LATENCY,
                f"{DETECT_LATENCY}: quarantine did not restore forward "
                f"progress (deadlocked_at_end="
                f"{cell.oracle_deadlocked_at_end}, delivered "
                f"{cell.delivered_at_confirm} -> {cell.delivered_end})",
                now=now,
            )
    for fp_cell in false_positive_cells(outcome):
        if fp_cell.confirms > 0:
            report.note_violation(
                scenario.scenario_id,
                DETECT_FALSE_POSITIVE,
                f"{DETECT_FALSE_POSITIVE}: cell {fp_cell.name!r} had "
                f"{fp_cell.confirms} confirmation(s) with no "
                f"ground-truth cycle",
                now=now,
            )
    return 1


# ---------------------------------------------------------------------------
# Parallel sweep path (config.workers > 1)
# ---------------------------------------------------------------------------


def _scenario_eligible(scenario: Scenario) -> bool:
    """Would the dynamic stages actually run this scenario?

    Transcribes the shared skip conditions of :func:`run_oracle` and
    ``detection_matrix`` — a purely static predicate (no simulation):
    the ELP must contain a CBD-forming path pair, and at least one such
    pair must have hosts at both endpoints. Static predictability is
    what lets the parallel planner replicate the serial loop's budget
    arithmetic without running any simulator first.
    """
    topo = scenario.build_topology()
    elp = scenario.build_elp(topo)
    for pair in find_cbd_pairs(topo, list(elp.paths)):
        if all(_host_endpoints(topo, path) is not None for path in pair):
            return True
    return False


def _static_worker(
    task: Tuple[Scenario, Optional[str], bool]
) -> Dict[str, Any]:
    """Phase-A sweep worker: cross-check plus dynamic-stage eligibility.

    Module-level (fork-pool discipline); returns a compact picklable
    dict. ``ReproError`` is caught here so the fold can replay the
    serial loop's harness-error text byte for byte.
    """
    scenario, fault, need_eligibility = task
    try:
        result = cross_check(scenario, fault=fault)
    except ReproError as exc:
        return {"error": str(exc)}
    out: Dict[str, Any] = {
        "error": None,
        "ok": result.ok,
        "invariants": result.invariants_violated(),
        "details": [str(v) for v in result.violations],
        "eligible": False,
    }
    if need_eligibility and result.ok:
        out["eligible"] = _scenario_eligible(scenario)
    return out


def _dynamic_worker(task: Tuple[str, Scenario, FuzzConfig]) -> Any:
    """Phase-B sweep worker: one oracle or detection-matrix replay.

    Mirrors the serial loop's exception asymmetry: ``run_oracle``
    exceptions propagate (structured worker-error), while the matrix's
    ``ReproError`` is caught and consumed as a harness error.
    """
    kind, scenario, config = task
    if kind == "oracle":
        return run_oracle(scenario, duration=config.oracle_duration)
    from repro.detect.matrix import detection_matrix

    try:
        return detection_matrix(
            scenario, duration=config.detect_duration, seed=config.seed
        )
    except ReproError as exc:
        return {"harness_error": str(exc)}


def _run_fuzz_parallel(
    config: FuzzConfig, telemetry: Optional[Telemetry]
) -> FuzzReport:
    """Chunked parallel sweep with a serial fold.

    Each chunk runs three steps:

    1. **Phase A** — fan the static cross-check (plus the eligibility
       predicate) over the worker pool;
    2. **assignment** — replay the serial loop's budget arithmetic over
       the phase-A results, in scenario order, without touching the
       report, to decide which scenarios the oracle / detection stages
       would have run;
    3. **Phase B + fold** — fan the planned simulator replays out, then
       apply *every* report mutation in one serial pass in scenario
       order.

    Because the fold owns all mutations and runs in scenario order, the
    report matches the ``workers=1`` run field for field (modulo
    ``elapsed_seconds``); ``tests/fuzz/test_parallel.py`` pins this.
    The wall-clock time budget is enforced at chunk boundaries.
    """
    from repro.simulator.sweep import run_sweep

    started = time.monotonic()
    report = FuzzReport(config=config, telemetry=telemetry)
    generator = ScenarioGenerator(config.seed)
    oracle_left = config.oracle_budget
    detect_left = config.detect_budget
    chunk_size = max(1, config.workers) * 4
    produced = 0

    while produced < config.iterations:
        if (
            config.time_budget is not None
            and time.monotonic() - started > config.time_budget
        ):
            break
        count = min(chunk_size, config.iterations - produced)
        scenarios = [next(generator) for _ in range(count)]
        need_eligibility = oracle_left > 0 or detect_left > 0
        static_results = run_sweep(
            _static_worker,
            [(s, config.inject_fault, need_eligibility) for s in scenarios],
            workers=config.workers,
            seed=config.seed + produced,
        )

        # Assignment pass: pure budget arithmetic, no report mutation.
        oracle_plan = [False] * count
        detect_plan = [False] * count
        o_left, d_left = oracle_left, detect_left
        for i, static in enumerate(static_results):
            if not static.ok:
                continue  # worker crash/error: no dynamic stage
            info = static.value
            if info["error"] is not None or not info["ok"]:
                continue
            if o_left > 0 and info["eligible"]:
                o_left -= 1
                oracle_plan[i] = True
            if d_left > 0 and info["eligible"]:
                d_left -= 1
                detect_plan[i] = True

        dynamic_tasks: List[Tuple[str, Scenario, FuzzConfig]] = []
        slot: Dict[Tuple[str, int], int] = {}
        for i, scenario in enumerate(scenarios):
            if oracle_plan[i]:
                slot[("oracle", i)] = len(dynamic_tasks)
                dynamic_tasks.append(("oracle", scenario, config))
            if detect_plan[i]:
                slot[("detect", i)] = len(dynamic_tasks)
                dynamic_tasks.append(("detect", scenario, config))
        dynamic_results = (
            run_sweep(
                _dynamic_worker,
                dynamic_tasks,
                workers=config.workers,
                seed=config.seed + produced,
            )
            if dynamic_tasks
            else []
        )

        # Fold: one serial pass in scenario order owns every mutation.
        for i, scenario in enumerate(scenarios):
            iteration = produced + i
            elapsed = time.monotonic() - started
            _note_scenario(report, scenario, elapsed)
            static = static_results[i]
            if not static.ok:
                report.note_violation(
                    scenario.scenario_id,
                    "harness-error",
                    f"{static.error_kind}: {static.error}",
                    now=elapsed,
                )
                continue
            info = static.value
            if info["error"] is not None:
                report.note_violation(
                    scenario.scenario_id,
                    "harness-error",
                    info["error"],
                    now=elapsed,
                )
                continue
            report.invariant_checks += _CHECKS_PER_SCENARIO
            if not info["ok"]:
                _record_failure(
                    report,
                    scenario,
                    info["invariants"],
                    info["details"],
                    iteration,
                    now=elapsed,
                )
                continue

            if oracle_left > 0:
                if not oracle_plan[i]:
                    report.oracle_skips += 1
                else:
                    oracle_left -= 1
                    res = dynamic_results[slot[("oracle", i)]]
                    if not res.ok:
                        report.note_violation(
                            scenario.scenario_id,
                            "harness-error",
                            f"oracle {res.error_kind}: {res.error}",
                            now=elapsed,
                        )
                    else:
                        _apply_oracle_outcome(
                            report, scenario, res.value, iteration,
                            now=elapsed,
                        )

            if detect_left > 0:
                if not detect_plan[i]:
                    report.detect_skips += 1
                else:
                    detect_left -= 1
                    res = dynamic_results[slot[("detect", i)]]
                    if not res.ok:
                        report.note_violation(
                            scenario.scenario_id,
                            "harness-error",
                            f"detect {res.error_kind}: {res.error}",
                            now=elapsed,
                        )
                    elif isinstance(res.value, dict):
                        report.note_violation(
                            scenario.scenario_id,
                            "harness-error",
                            res.value["harness_error"],
                            now=elapsed,
                        )
                    else:
                        _apply_matrix_outcome(
                            report, scenario, res.value, now=elapsed
                        )
        produced += count

    return _finalize_report(report, telemetry, started)


def _record_failure(
    report: FuzzReport,
    scenario: Scenario,
    invariants: List[str],
    details: List[str],
    iteration: int,
    shrinkable: bool = True,
    now: float = 0.0,
) -> None:
    config = report.config
    for detail in details:
        report.note_violation(
            scenario.scenario_id, detail.split(":", 1)[0], detail, now=now
        )
    if not (config.shrink and shrinkable and config.corpus_dir):
        return
    try:
        shrunk, still = shrink_scenario(
            scenario, fault=config.inject_fault, targets=invariants
        )
    except ReproError:
        shrunk, still = scenario, invariants
    entry = save_entry(
        config.corpus_dir,
        shrunk,
        violations=still or invariants,
        inject_fault=config.inject_fault,
        found_by={"seed": config.seed, "iteration": iteration},
    )
    report.corpus_entries.append(entry)


def replay_entry(entry: CorpusEntry) -> Dict[str, Any]:
    """Replay one corpus entry both ways (with and without its fault).

    Returns a dict with ``reproduced`` (the recorded violations fire
    with the fault injected) and ``clean_without_fault`` (the healthy
    pipeline passes on the same scenario).
    """
    with_fault = cross_check(entry.scenario, fault=entry.inject_fault)
    if entry.inject_fault is None:
        # A real-bug entry: after the fix that closed it, it must replay
        # clean forever.
        return {
            "id": entry.entry_id,
            "reproduced": None,
            "clean_without_fault": with_fault.ok,
            "violations_seen": with_fault.invariants_violated(),
            "ok": with_fault.ok,
        }
    clean = cross_check(entry.scenario, fault=None)
    reproduced = bool(
        set(entry.violations) & set(with_fault.invariants_violated())
    )
    return {
        "id": entry.entry_id,
        "reproduced": reproduced,
        "clean_without_fault": clean.ok,
        "violations_seen": with_fault.invariants_violated(),
        "ok": reproduced and clean.ok,
    }
