"""Seeded scenario generation for the differential fuzzer.

A :class:`Scenario` is a fully reproducible description of one fuzz case:
a topology recipe (kind + parameters + sampled mutations such as failed
links or express circuits) and an ELP recipe. Everything random is
sampled once at generation time and stored concretely, so a scenario can
be serialized to JSON, committed to the regression corpus, and rebuilt
bit-for-bit later.

Scenario space (mirrors the paper's evaluation targets):

- ``clos`` — 3-layer Clos fabrics, optionally with failed links, with
  up-down or k-bounce ELPs (§4, Fig. 3);
- ``jellyfish`` — random regular fabrics with shortest-path ELPs plus
  optional extra random loop-free paths (Table 5);
- ``bcube`` — server-centric BCube with default digit-correcting routes,
  optionally mixed with rotated (BSR-style) routes that create
  inter-level cycles (§5.3);
- ``express`` — Clos augmented with same-layer ToR-to-ToR express links
  (Helios/Flyways/Projector, §6) and shortest-path ELPs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.elp import (
    ElpSet,
    bcube_elp,
    clos_bounce_elp,
    clos_updown_elp,
    shortest_path_elp,
)
from repro.exceptions import ReproError
from repro.routing.shortest import bfs_distances, random_loopfree_paths
from repro.topology import ClosParams, Topology, clos3, jellyfish
from repro.topology.bcube import bcube, bcube_rotated_route, bcube_servers
from repro.topology.flexible import add_express_link

KINDS = ("clos", "jellyfish", "bcube", "express")


@dataclass
class Scenario:
    """One reproducible fuzz case: topology recipe + ELP recipe.

    When ``explicit_paths`` is set (shrunk corpus entries), it replaces
    the generated ELP verbatim; paths that no longer exist in the
    (possibly shrunk) topology are rejected at build time.
    """

    scenario_id: str
    kind: str
    seed: int
    topo_params: Dict[str, Any] = field(default_factory=dict)
    elp_kind: str = "updown"
    elp_params: Dict[str, Any] = field(default_factory=dict)
    failed_links: List[Tuple[str, str]] = field(default_factory=list)
    express_pairs: List[Tuple[str, str]] = field(default_factory=list)
    explicit_paths: Optional[List[Tuple[str, ...]]] = None

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def build_topology(self) -> Topology:
        if self.kind in ("clos", "express"):
            topo = clos3(ClosParams(**self.topo_params))
        elif self.kind == "jellyfish":
            topo = jellyfish(**self.topo_params)
        elif self.kind == "bcube":
            topo = bcube(**self.topo_params)
        else:
            raise ReproError(f"unknown scenario kind {self.kind!r}")
        for a, b in self.express_pairs:
            add_express_link(topo, a, b)
        for a, b in self.failed_links:
            topo.fail_link(a, b)
        return topo

    def build_elp(self, topo: Topology) -> ElpSet:
        if self.explicit_paths is not None:
            elp = ElpSet(topo, description=f"{self.scenario_id} (explicit)")
            elp.extend(self.explicit_paths)
            elp.dedupe()
            return elp
        if self.elp_kind == "updown":
            return clos_updown_elp(topo)
        if self.elp_kind == "bounce":
            return clos_bounce_elp(
                topo,
                max_bounces=self.elp_params.get("max_bounces", 1),
                max_paths_per_pair=self.elp_params.get("max_paths_per_pair"),
            )
        if self.elp_kind == "shortest":
            endpoints = self.elp_params.get("endpoints")
            elp = shortest_path_elp(
                topo,
                endpoints=endpoints,
                per_pair=self.elp_params.get("per_pair", 1),
            )
            extra = self.elp_params.get("extra_random_paths", 0)
            if extra:
                elp.extend(
                    random_loopfree_paths(
                        topo,
                        extra,
                        endpoints=endpoints,
                        seed=self.elp_params.get("path_seed", self.seed),
                    )
                )
                elp.dedupe()
            return elp
        if self.elp_kind == "bcube":
            n = self.topo_params["n"]
            k = self.topo_params["k"]
            elp = bcube_elp(topo, n, k)
            for src, dst, level in self.elp_params.get("rotated", []):
                elp.add(bcube_rotated_route(topo, n, k, src, dst, level))
            elp.dedupe()
            return elp
        raise ReproError(f"unknown ELP kind {self.elp_kind!r}")

    @property
    def clos_bounce_budget(self) -> Optional[int]:
        """Bounce budget k when the Clos tagger applies, else None."""
        if self.kind == "clos" and self.elp_kind in ("bounce", "updown"):
            if self.elp_kind == "updown":
                return 0
            return int(self.elp_params.get("max_bounces", 1))
        return None

    # ------------------------------------------------------------------
    # Serialization (corpus format)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        blob: Dict[str, Any] = {
            "scenario_id": self.scenario_id,
            "kind": self.kind,
            "seed": self.seed,
            "topo_params": dict(self.topo_params),
            "elp_kind": self.elp_kind,
            "elp_params": _jsonable(self.elp_params),
            "failed_links": [list(pair) for pair in self.failed_links],
            "express_pairs": [list(pair) for pair in self.express_pairs],
        }
        if self.explicit_paths is not None:
            blob["explicit_paths"] = [list(p) for p in self.explicit_paths]
        return blob

    @staticmethod
    def from_dict(blob: Dict[str, Any]) -> "Scenario":
        explicit = blob.get("explicit_paths")
        return Scenario(
            scenario_id=blob["scenario_id"],
            kind=blob["kind"],
            seed=blob["seed"],
            topo_params=dict(blob.get("topo_params", {})),
            elp_kind=blob.get("elp_kind", "updown"),
            elp_params=_rehydrate_elp_params(blob.get("elp_params", {})),
            failed_links=[tuple(pair) for pair in blob.get("failed_links", [])],
            express_pairs=[tuple(pair) for pair in blob.get("express_pairs", [])],
            explicit_paths=(
                [tuple(p) for p in explicit] if explicit is not None else None
            ),
        )

    def with_paths(self, paths: List[Tuple[str, ...]]) -> "Scenario":
        """Copy of this scenario pinned to an explicit path list."""
        return replace(self, explicit_paths=[tuple(p) for p in paths])


def _jsonable(params: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in params.items():
        if key == "rotated":
            out[key] = [list(item) for item in value]
        else:
            out[key] = value
    return out


def _rehydrate_elp_params(params: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(params)
    if "rotated" in out:
        out["rotated"] = [tuple(item) for item in out["rotated"]]
    return out


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
class ScenarioGenerator:
    """Deterministic stream of random scenarios from one master seed."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._index = 0

    def __iter__(self) -> "ScenarioGenerator":
        return self

    def __next__(self) -> Scenario:
        self._index += 1
        case_seed = self._rng.randrange(1, 2**31)
        rng = random.Random(case_seed)
        kind = rng.choices(KINDS, weights=(45, 20, 20, 15))[0]
        builder = {
            "clos": self._clos,
            "jellyfish": self._jellyfish,
            "bcube": self._bcube,
            "express": self._express,
        }[kind]
        return builder(rng, case_seed)

    # -- per-kind recipes ----------------------------------------------
    def _clos(self, rng: random.Random, case_seed: int) -> Scenario:
        params = ClosParams(
            num_pods=rng.randint(1, 3),
            tors_per_pod=rng.randint(2, 3),
            leaves_per_pod=rng.randint(1, 2),
            num_spines=rng.randint(1, 3),
            hosts_per_tor=rng.randint(1, 2),
        )
        if rng.random() < 0.35:
            elp_kind, elp_params = "updown", {}
        else:
            elp_kind = "bounce"
            elp_params = {
                "max_bounces": rng.randint(0, 2),
                "max_paths_per_pair": rng.randint(3, 8),
            }
        scenario = Scenario(
            scenario_id=f"clos-{case_seed:08x}",
            kind="clos",
            seed=case_seed,
            topo_params={
                "num_pods": params.num_pods,
                "tors_per_pod": params.tors_per_pod,
                "leaves_per_pod": params.leaves_per_pod,
                "num_spines": params.num_spines,
                "hosts_per_tor": params.hosts_per_tor,
            },
            elp_kind=elp_kind,
            elp_params=elp_params,
        )
        if rng.random() < 0.3:
            scenario.failed_links = _sample_safe_failures(
                scenario, rng, max_failures=rng.randint(1, 2)
            )
        return scenario

    def _jellyfish(self, rng: random.Random, case_seed: int) -> Scenario:
        num_switches = rng.randint(4, 8)
        network_ports = rng.randint(2, min(3, num_switches - 1))
        if (num_switches * network_ports) % 2 != 0:
            num_switches += 1
        return Scenario(
            scenario_id=f"jellyfish-{case_seed:08x}",
            kind="jellyfish",
            seed=case_seed,
            topo_params={
                "num_switches": num_switches,
                "ports_per_switch": network_ports + 1,
                "network_ports": network_ports,
                "hosts_per_switch": rng.randint(0, 1),
                "seed": case_seed,
            },
            elp_kind="shortest",
            elp_params={
                "per_pair": rng.randint(1, 2),
                "extra_random_paths": rng.randint(0, 4),
                "path_seed": case_seed,
            },
        )

    def _bcube(self, rng: random.Random, case_seed: int) -> Scenario:
        n = rng.randint(2, 3)
        k = 1
        elp_params: Dict[str, Any] = {}
        if rng.random() < 0.5:
            # Mix in rotated (BSR-style) routes: the regime where default
            # BCube routing stops being cycle-free across levels.
            topo = bcube(n=n, k=k)
            servers = bcube_servers(topo)
            rotated = []
            for _ in range(rng.randint(1, 4)):
                src, dst = rng.sample(servers, 2)
                rotated.append((src, dst, rng.randint(0, k)))
            elp_params["rotated"] = rotated
        return Scenario(
            scenario_id=f"bcube-{case_seed:08x}",
            kind="bcube",
            seed=case_seed,
            topo_params={"n": n, "k": k},
            elp_kind="bcube",
            elp_params=elp_params,
        )

    def _express(self, rng: random.Random, case_seed: int) -> Scenario:
        params = {
            "num_pods": rng.randint(2, 3),
            "tors_per_pod": rng.randint(2, 3),
            "leaves_per_pod": rng.randint(1, 2),
            "num_spines": rng.randint(1, 2),
            "hosts_per_tor": rng.randint(0, 1),
        }
        topo = clos3(ClosParams(**params))
        tors = sorted(topo.switches_at_layer(0))
        pairs: List[Tuple[str, str]] = []
        for _ in range(rng.randint(1, 2)):
            a, b = rng.sample(tors, 2)
            key = (min(a, b), max(a, b))
            if key not in pairs and not topo.has_link(*key):
                pairs.append(key)
                topo.add_link(*key)
        return Scenario(
            scenario_id=f"express-{case_seed:08x}",
            kind="express",
            seed=case_seed,
            topo_params=params,
            elp_kind="shortest",
            elp_params={"endpoints": tors, "per_pair": rng.randint(1, 2)},
            express_pairs=pairs,
        )


def _sample_safe_failures(
    scenario: Scenario, rng: random.Random, max_failures: int
) -> List[Tuple[str, str]]:
    """Sample switch-to-switch link failures that keep the fabric connected."""
    topo = scenario.build_topology()
    candidates = [
        link.key
        for link in topo.iter_links()
        if topo.node(link.a).is_switch and topo.node(link.b).is_switch
    ]
    rng.shuffle(candidates)
    chosen: List[Tuple[str, str]] = []
    for a, b in candidates:
        if len(chosen) >= max_failures:
            break
        topo.fail_link(a, b)
        if _switches_connected(topo):
            chosen.append((a, b))
        else:
            topo.restore_link(a, b)
    return chosen


def _switches_connected(topo: Topology) -> bool:
    switches = sorted(topo.switches)
    if len(switches) <= 1:
        return True
    reachable = bfs_distances(topo, switches[0])
    return all(name in reachable for name in switches)
