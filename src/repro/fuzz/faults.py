"""Artificial tagger bugs for harness self-validation.

A fuzzing harness that never fires is indistinguishable from one that
cannot fire. Each fault here corrupts one tagging stage in a way a real
implementation bug plausibly would; the harness (and the committed
regression corpus) asserts that the cross-check engine catches every one
of them. Faults are addressed by name so a corpus entry can record which
bug it witnesses.

Faults deliberately bypass :meth:`TaggedGraph.add_edge`'s monotonicity
guard where needed — a buggy tagger rewritten in C or P4 would not have
that guard either, and requirement R2 must be caught by *verification*,
not by construction alone.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.clos import ClosTagger
from repro.core.tags import TaggedGraph, TNode
from repro.exceptions import ReproError


class FaultError(ReproError):
    """Unknown fault name requested."""


def _rebuild_unchecked(graph: TaggedGraph, remap) -> TaggedGraph:
    """Rebuild ``graph`` with nodes remapped, skipping the R2 edge guard."""
    out = TaggedGraph()
    mapping: Dict[TNode, TNode] = {node: remap(node) for node in graph.nodes}
    for node in mapping.values():
        out.add_node(node)
    for src, dst in graph.edges():
        new_src, new_dst = mapping[src], mapping[dst]
        out._out[new_src].add(new_dst)
        out._in[new_dst].add(new_src)
    return out


def skip_r2(graph: TaggedGraph) -> TaggedGraph:
    """Reverse the tag order: edges now *decrease* the tag (violates R2).

    Models a tagger that got the monotonicity direction wrong. On graphs
    with a single tag this is the identity (nothing to catch).
    """
    top = graph.max_tag
    return _rebuild_unchecked(
        graph, lambda node: (node[0], top + 1 - node[1])
    )


def collapse_tags(graph: TaggedGraph) -> TaggedGraph:
    """Merge every node into tag 1, ignoring the CBD-free constraint.

    Models a minimizer whose sandbox acyclicity check is broken: the
    moment the ELP contains a buffer cycle (any bounce pair), the single
    remaining class contains it too (violates R1).
    """
    return _rebuild_unchecked(graph, lambda node: (node[0], 1))


class _NoBounceClosTagger(ClosTagger):
    """Clos tagger that fails to recognize bounces (never increments)."""

    def is_bounce(self, switch: str, in_port: int, out_port: int) -> bool:
        return False


def clos_ignore_bounce(tagger: ClosTagger) -> ClosTagger:
    return _NoBounceClosTagger(topo=tagger.topo, max_bounces=tagger.max_bounces)


#: Greedy-stage faults: TaggedGraph -> corrupted TaggedGraph.
GRAPH_FAULTS: Dict[str, Callable[[TaggedGraph], TaggedGraph]] = {
    "skip-r2": skip_r2,
    "collapse-tags": collapse_tags,
}

#: Clos-stage faults: ClosTagger -> corrupted ClosTagger.
CLOS_FAULTS: Dict[str, Callable[[ClosTagger], ClosTagger]] = {
    "clos-ignore-bounce": clos_ignore_bounce,
}

#: All fault names, for CLI/corpus validation.
FAULTS = tuple(sorted(set(GRAPH_FAULTS) | set(CLOS_FAULTS)))


def check_fault_name(name: str) -> str:
    if name not in FAULTS:
        raise FaultError(
            f"unknown fault {name!r}; available: {', '.join(FAULTS)}"
        )
    return name
