"""Artificial tagger bugs for harness self-validation.

A fuzzing harness that never fires is indistinguishable from one that
cannot fire. Each fault here corrupts one tagging stage in a way a real
implementation bug plausibly would; the harness (and the committed
regression corpus) asserts that the cross-check engine catches every one
of them. Faults are addressed by name so a corpus entry can record which
bug it witnesses.

Faults deliberately bypass :meth:`TaggedGraph.add_edge`'s monotonicity
guard where needed — a buggy tagger rewritten in C or P4 would not have
that guard either, and requirement R2 must be caught by *verification*,
not by construction alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:
    from repro.deploy.agent import ApplyOp, SwitchAgent

from repro.core.clos import ClosTagger
from repro.core.compression import TcamEntry
from repro.core.planner import TaggerPlan
from repro.core.replan import IncrementalPlanner
from repro.core.rules import RuleTable
from repro.core.tags import INITIAL_TAG, TaggedGraph, TNode
from repro.exceptions import ReproError
from repro.lint.artifact import DeploymentArtifact
from repro.topology.failures import TopologyDelta


class FaultError(ReproError):
    """Unknown fault name requested."""


def _rebuild_unchecked(graph: TaggedGraph, remap) -> TaggedGraph:
    """Rebuild ``graph`` with nodes remapped, skipping the R2 edge guard."""
    out = TaggedGraph()
    mapping: Dict[TNode, TNode] = {node: remap(node) for node in graph.nodes}
    for node in mapping.values():
        out.add_node(node)
    for src, dst in graph.edges():
        new_src, new_dst = mapping[src], mapping[dst]
        out._out[new_src].add(new_dst)
        out._in[new_dst].add(new_src)
    return out


def skip_r2(graph: TaggedGraph) -> TaggedGraph:
    """Reverse the tag order: edges now *decrease* the tag (violates R2).

    Models a tagger that got the monotonicity direction wrong. On graphs
    with a single tag this is the identity (nothing to catch).
    """
    top = graph.max_tag
    return _rebuild_unchecked(
        graph, lambda node: (node[0], top + 1 - node[1])
    )


def collapse_tags(graph: TaggedGraph) -> TaggedGraph:
    """Merge every node into tag 1, ignoring the CBD-free constraint.

    Models a minimizer whose sandbox acyclicity check is broken: the
    moment the ELP contains a buffer cycle (any bounce pair), the single
    remaining class contains it too (violates R1).
    """
    return _rebuild_unchecked(graph, lambda node: (node[0], 1))


class _NoBounceClosTagger(ClosTagger):
    """Clos tagger that fails to recognize bounces (never increments)."""

    def is_bounce(self, switch: str, in_port: int, out_port: int) -> bool:
        return False


def clos_ignore_bounce(tagger: ClosTagger) -> ClosTagger:
    return _NoBounceClosTagger(topo=tagger.topo, max_bounces=tagger.max_bounces)


def _copy_tables(tables: Dict[str, RuleTable]) -> Dict[str, RuleTable]:
    return {
        switch: RuleTable(
            switch=switch, rules=dict(table.rules), policy=table.policy
        )
        for switch, table in tables.items()
    }


def tcam_shadow(artifact: DeploymentArtifact) -> DeploymentArtifact:
    """Swap the safeguard with the entry before it on one switch.

    Models a compiler or switch agent that emits entries out of order:
    the catch-all wildcard now sits *above* a real entry, which is fully
    shadowed — its packets demote instead of rewriting. The linter must
    report S101 (and the S104 round-trip divergence). Identity when every
    program holds only the safeguard.
    """
    programs = {
        switch: list(entries)
        for switch, entries in artifact.ensure_programs().items()
    }
    for switch in sorted(programs):
        program = programs[switch]
        if len(program) >= 2:
            program[-1], program[-2] = program[-2], program[-1]
            break
    return artifact.with_programs(programs)


def tcam_drop_safeguard(artifact: DeploymentArtifact) -> DeploymentArtifact:
    """Strip the trailing safeguard default from every program.

    Models forgetting the paper's footnote-3 rule ("always the last one
    in the TCAM rule list"): unmatched packets keep an undefined tag
    instead of demoting. The linter must report S105.
    """
    programs: Dict[str, List[TcamEntry]] = {}
    for switch, entries in artifact.ensure_programs().items():
        kept = list(entries)
        if kept and kept[-1].is_wildcard:
            kept.pop()
        programs[switch] = kept
    return artifact.with_programs(programs)


def rule_decrease_tag(artifact: DeploymentArtifact) -> DeploymentArtifact:
    """Rewrite one rule to send packets back to the initial tag.

    Models an off-by-one in rule generation that breaks monotonicity
    (requirement R2). The linter must report T002. Identity on
    deployments whose every rule matches the initial tag.
    """
    tables = _copy_tables(artifact.tables)
    for switch in sorted(tables):
        table = tables[switch]
        for key in sorted(table.rules):
            if key[0] > INITIAL_TAG:
                table.rules[key] = INITIAL_TAG
                return DeploymentArtifact(
                    topo=artifact.topo,
                    tables=tables,
                    queue_map=artifact.queue_map,
                    tcam_budget=artifact.tcam_budget,
                )
    return artifact


def rule_tag_cycle(artifact: DeploymentArtifact) -> DeploymentArtifact:
    """Install a two-rule ping-pong across one switch-to-switch link.

    Models a stale or hand-edited rule pair that closes an intra-tag
    buffer-dependency cycle (requirement R1). The linter must report
    T001. Identity on fabrics with no switch-to-switch link.
    """
    topo = artifact.topo
    for link in topo.iter_links(include_failed=True):
        if not (topo.node(link.a).is_switch and topo.node(link.b).is_switch):
            continue
        tables = _copy_tables(artifact.tables)
        for near, far in ((link.a, link.b), (link.b, link.a)):
            table = tables.setdefault(near, RuleTable(switch=near))
            port = topo.port_to(near, far)
            table.rules[(INITIAL_TAG, port, port)] = INITIAL_TAG
        return DeploymentArtifact(
            topo=topo,
            tables=tables,
            queue_map=artifact.queue_map,
            tcam_budget=artifact.tcam_budget,
        )
    return artifact


def replan_drop_rule(
    planner: IncrementalPlanner, delta: TopologyDelta
) -> None:
    """Re-plan correctly, then lose one rule install from the result.

    Models a minimal-rule-diff applier that drops an install on its way
    to the switch: the planner's view and the deployed tables disagree
    by exactly one entry. The differential byte-identity oracle
    (``incremental-divergence``) must catch it whenever the plan holds
    any explicit rule at all — identity only on ELPs so short that no
    transit rule is ever emitted.
    """
    planner.apply(delta)
    for switch in sorted(planner.plan.tables):
        table = planner.plan.tables[switch]
        if table.rules:
            del table.rules[sorted(table.rules)[0]]
            return


#: Greedy-stage faults: TaggedGraph -> corrupted TaggedGraph.
GRAPH_FAULTS: Dict[str, Callable[[TaggedGraph], TaggedGraph]] = {
    "skip-r2": skip_r2,
    "collapse-tags": collapse_tags,
}

#: Clos-stage faults: ClosTagger -> corrupted ClosTagger.
CLOS_FAULTS: Dict[str, Callable[[ClosTagger], ClosTagger]] = {
    "clos-ignore-bounce": clos_ignore_bounce,
}

#: Artifact-stage faults: corrupt the compiled deployment the linter sees.
ARTIFACT_FAULTS: Dict[
    str, Callable[[DeploymentArtifact], DeploymentArtifact]
] = {
    "tcam-shadow": tcam_shadow,
    "tcam-drop-safeguard": tcam_drop_safeguard,
    "rule-decrease-tag": rule_decrease_tag,
    "rule-tag-cycle": rule_tag_cycle,
}

#: Replan-stage faults: buggy delta application on an IncrementalPlanner.
REPLAN_FAULTS: Dict[
    str, Callable[[IncrementalPlanner, TopologyDelta], None]
] = {
    "replan-drop-rule": replan_drop_rule,
}


def symmetry_drop_rule(plan: TaggerPlan) -> None:
    """Lose one rule from a symmetry-planned table set.

    Models a closed-form replication bug: the per-orbit tagging is
    computed correctly but one replica's rule never materializes. The
    byte-identity oracle against the exhaustive planner
    (``symmetry-divergence``) must catch it whenever the plan holds any
    explicit rule — identity only on ELPs too short to emit one.
    """
    for switch in sorted(plan.tables):
        table = plan.tables[switch]
        if table.rules:
            del table.rules[sorted(table.rules)[0]]
            return


#: Symmetry-stage faults: corrupt the symmetry-planned TaggerPlan.
SYMMETRY_FAULTS: Dict[str, Callable[[TaggerPlan], None]] = {
    "symmetry-drop-rule": symmetry_drop_rule,
}


def deploy_phantom_ack(agents: Dict[str, "SwitchAgent"]) -> None:
    """Make one diff-carrying agent ack batches without applying any op.

    Models the classic lying switch agent: the RPC layer works, the
    journal records the batch, but the TCAM write path is broken. Acks
    alone would declare the rollout converged; the orchestrator's
    readback verification must observe the stale table, fail to
    reconcile, and refuse to report convergence — which the
    ``deployment-divergence`` invariant then flags.
    """
    for switch in sorted(agents):
        agents[switch].op_filter = lambda op: None
        return


def deploy_lost_remove(agents: Dict[str, "SwitchAgent"]) -> None:
    """Make every agent silently drop delete operations (installs work).

    Models an agent (or ASIC SDK) whose delete path no-ops while still
    acking — deployed tables keep stale rules forever. Identity on
    transitions with no removed rules; otherwise readback verification
    sees the leftovers and the rollout cannot converge.
    """
    from repro.deploy.agent import OP_REMOVE

    def drop_removes(op: "ApplyOp") -> "Optional[ApplyOp]":
        return None if op.action == OP_REMOVE else op

    for agent in agents.values():
        agent.op_filter = drop_removes


#: Deploy-stage faults: install buggy behavior on a fleet of SwitchAgents
#: (keyed by switch name) before the rollout runs.
DEPLOY_FAULTS: Dict[str, Callable[[Dict[str, "SwitchAgent"]], None]] = {
    "deploy-phantom-ack": deploy_phantom_ack,
    "deploy-lost-remove": deploy_lost_remove,
}

#: All fault names, for CLI/corpus validation.
FAULTS = tuple(
    sorted(
        set(GRAPH_FAULTS)
        | set(CLOS_FAULTS)
        | set(ARTIFACT_FAULTS)
        | set(REPLAN_FAULTS)
        | set(SYMMETRY_FAULTS)
        | set(DEPLOY_FAULTS)
    )
)


def check_fault_name(name: str) -> str:
    if name not in FAULTS:
        raise FaultError(
            f"unknown fault {name!r}; available: {', '.join(FAULTS)}"
        )
    return name
