"""Differential cross-check of all taggers on one scenario.

Every scenario's ELP is pushed through four independent implementations
of the same contract — brute force (Algorithm 1), greedy minimization
(Algorithm 2), the rule-realizable deterministic minimizer, and (on Clos
with bounce ELPs) the topology-aware Clos tagger — and the results are
checked against each other and against Theorem 5.1. On scenarios whose
ELP is pair-decomposable, the incremental re-planner
(:mod:`repro.core.replan`) is additionally flapped through a link
failure and checked byte-for-byte against the from-scratch pipeline:

==========================  ============================================
invariant                   meaning
==========================  ============================================
``bruteforce-unsafe``       Algorithm 1 output fails R1/R2
``greedy-unsafe``           Algorithm 2 output fails R1/R2
``greedy-dominance``        greedy used MORE tags than brute force
``greedy-coverage``         greedy lost/invented ingress ports
``deterministic-unsafe``    deterministic minimizer fails R1/R2
``deterministic-dominance`` deterministic used more tags than brute force
``deterministic-coverage``  rules demote an ELP path w/o contradiction
``rules-inconsistent``      graph -> rules -> graph round trip diverged
``rules-unsafe``            effective (deployed) rule graph fails R1/R2
``rules-coverage``          conflict-free rules demote an ELP path
``clos-unsafe``             Clos tagger's induced graph fails R1/R2
``clos-tag-count``          Clos tagger used != k + 1 lossless tags
``clos-coverage``           Clos losslessness disagrees with bounce count
``lint-dirty``              deployment linter found error-severity
                            findings in the compiled artifact (rules +
                            TCAM programs + queue map; :mod:`repro.lint`)
``incremental-divergence``  after a link flap, the incremental re-plan
                            differs from the from-scratch plan (rule
                            tables or tagged graph)
``symmetry-divergence``     the symmetry-strategy planner (closed-form
                            orbit replication, or its degraded
                            exhaustive fallback) produced different
                            bytes than explicit exhaustive enumeration
``deployment-divergence``   rolling the re-planned diff onto an agent
                            fleet through a benign fault schedule failed
                            to converge to the exact target with
                            lint-clean tables (:mod:`repro.deploy`)
==========================  ============================================

The checks never raise on a violation — they *record* it, so the harness
can shrink and persist the scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core import (
    STRATEGY_EXHAUSTIVE,
    STRATEGY_SYMMETRY,
    ClosTagger,
    TaggerPlan,
    bruteforce_tagging,
    coverage_report,
    deterministic_minimize,
    greedy_minimize,
    rules_from_tagged_graph,
    rules_to_tagged_graph,
    tables_equal,
    verify_tagged_graph,
)
from repro.core.elp import (
    PairwiseElpProvider,
    ShortestPathElpProvider,
    UpDownElpProvider,
)
from repro.core.pipeline import QueueMap
from repro.core.replan import IncrementalPlanner
from repro.core.tags import INITIAL_TAG, LOSSY_TAG, TaggedGraph
from repro.core.verification import VerificationReport
from repro.exceptions import ReproError
from repro.fuzz.faults import (
    ARTIFACT_FAULTS,
    CLOS_FAULTS,
    DEPLOY_FAULTS,
    GRAPH_FAULTS,
    REPLAN_FAULTS,
    SYMMETRY_FAULTS,
)
from repro.fuzz.scenarios import Scenario, _switches_connected
from repro.lint import DeploymentArtifact, lint_artifact
from repro.routing.base import count_bounces
from repro.topology.failures import TopologyDelta


@dataclass(frozen=True)
class Violation:
    """One failed invariant, with enough detail to debug it."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


@dataclass
class CrossCheckResult:
    """Outcome of the static differential stage for one scenario."""

    scenario_id: str
    violations: List[Violation] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def invariants_violated(self) -> List[str]:
        return sorted({v.invariant for v in self.violations})


def _summary(report: VerificationReport) -> str:
    if report.decreasing_edge is not None:
        src, dst = report.decreasing_edge
        return f"R2 violated: edge {src} -> {dst} decreases the tag"
    if report.tag_cycle is not None:
        return f"R1 violated: cycle of {len(report.tag_cycle)} nodes"
    return "ok"


def cross_check(
    scenario: Scenario, fault: Optional[str] = None
) -> CrossCheckResult:
    """Run every applicable tagger on the scenario and check invariants.

    Args:
        scenario: The case to check.
        fault: Optional artificial-bug name (see :mod:`repro.fuzz.faults`)
            injected into the matching stage; used to validate that the
            harness catches regressions.
    """
    result = CrossCheckResult(scenario_id=scenario.scenario_id)
    topo = scenario.build_topology()
    elp = scenario.build_elp(topo)
    result.stats["num_paths"] = len(elp)
    result.stats["num_switches"] = len(topo.switches)
    if len(elp) == 0:
        result.stats["skipped"] = "empty ELP"
        return result

    # -- Algorithm 1 ---------------------------------------------------
    bf = bruteforce_tagging(topo, elp.paths)
    bf_report = verify_tagged_graph(bf)
    result.stats["bruteforce_tags"] = bf.max_tag
    if not bf_report.deadlock_free:
        result.violations.append(
            Violation("bruteforce-unsafe", _summary(bf_report))
        )

    # -- Algorithm 2 (+ optional injected bug) -------------------------
    greedy = greedy_minimize(bf)
    if fault in GRAPH_FAULTS:
        greedy = GRAPH_FAULTS[fault](greedy)
    _check_minimizer(result, topo, elp, bf, greedy, prefix="greedy")

    # -- Deterministic (rule-realizable) minimizer ---------------------
    try:
        det = deterministic_minimize(topo, bf)
    except ReproError as exc:
        result.violations.append(Violation("deterministic-unsafe", str(exc)))
    else:
        det_report = verify_tagged_graph(det.graph)
        result.stats["deterministic_tags"] = det.num_tags
        if not det_report.deadlock_free:
            result.violations.append(
                Violation("deterministic-unsafe", _summary(det_report))
            )
        if det.num_tags > bf.max_tag:
            result.violations.append(
                Violation(
                    "deterministic-dominance",
                    f"deterministic used {det.num_tags} tags, "
                    f"brute force {bf.max_tag}",
                )
            )
        lossless, total, demoted = coverage_report(topo, det.tables, elp.paths)
        if det.contradictions == 0 and lossless != total:
            result.violations.append(
                Violation(
                    "deterministic-coverage",
                    f"{total - lossless}/{total} ELP paths demoted without "
                    f"contradictions, e.g. {demoted[0][0]}",
                )
            )
        # Every compiled artifact must lint clean (with an artifact-stage
        # fault injected first, the linter must catch the corruption).
        _check_lint(result, topo, det.tables, fault)

    # -- Clos topology-aware tagger ------------------------------------
    budget = scenario.clos_bounce_budget
    if budget is not None and not scenario.failed_links:
        _check_clos(result, topo, elp, budget, fault)

    # -- Symmetry-strategy planner vs exhaustive enumeration -----------
    _check_symmetry(result, scenario, fault)

    # -- Incremental re-planner vs from-scratch ------------------------
    _check_replan(result, scenario, fault)

    # -- Rollout of the re-planned transition over a faulty fleet ------
    _check_deploy(result, scenario, fault)

    return result


def _check_minimizer(
    result: CrossCheckResult,
    topo,
    elp,
    bf: TaggedGraph,
    minimized: TaggedGraph,
    prefix: str,
) -> None:
    """Safety + dominance + coverage + rule-consistency for one minimizer."""
    report = verify_tagged_graph(minimized)
    result.stats[f"{prefix}_tags"] = (
        minimized.max_tag if minimized.nodes else 0
    )
    if not report.deadlock_free:
        result.violations.append(
            Violation(f"{prefix}-unsafe", _summary(report))
        )
    if minimized.nodes and minimized.max_tag > bf.max_tag:
        result.violations.append(
            Violation(
                f"{prefix}-dominance",
                f"{prefix} used {minimized.max_tag} tags, "
                f"brute force {bf.max_tag}",
            )
        )
    if minimized.ports() != bf.ports():
        missing = bf.ports() - minimized.ports()
        extra = minimized.ports() - bf.ports()
        result.violations.append(
            Violation(
                f"{prefix}-coverage",
                f"port sets diverged (missing={sorted(missing)[:3]}, "
                f"extra={sorted(extra)[:3]})",
            )
        )

    # Rule compilation must agree with the graph it came from.
    try:
        rule_report = rules_from_tagged_graph(topo, minimized)
        effective = rules_to_tagged_graph(topo, rule_report.tables)
    except ReproError as exc:
        result.violations.append(Violation("rules-inconsistent", str(exc)))
        return
    eff_verify = verify_tagged_graph(effective) if effective.nodes else None
    if eff_verify is not None and not eff_verify.deadlock_free:
        result.violations.append(
            Violation("rules-unsafe", _summary(eff_verify))
        )
    if not rule_report.conflicts:
        # Conflict-free compilation must preserve the graph's edges
        # (modulo host-facing egress, which produces no rule) ...
        eff_edges = set(effective.edges())
        for edge in minimized.edges():
            if edge not in eff_edges:
                result.violations.append(
                    Violation(
                        "rules-inconsistent",
                        f"edge {edge} lost in rule round-trip",
                    )
                )
                break
        # ... and every ELP path must stay lossless under the rules.
        lossless, total, demoted = coverage_report(
            topo, rule_report.tables, elp.paths
        )
        if lossless != total:
            result.violations.append(
                Violation(
                    "rules-coverage",
                    f"{total - lossless}/{total} ELP paths demoted by "
                    f"conflict-free rules, e.g. {demoted[0][0]}",
                )
            )


def _check_lint(
    result: CrossCheckResult,
    topo,
    tables,
    fault: Optional[str],
) -> None:
    """Static artifact certification of the compiled deployment.

    The linter re-derives R1/R2 from the rule tables alone and checks
    TCAM order semantics, reachability, and queue fit — an independent
    pass over deployed reality rather than planner state.
    """
    max_tag = max(
        (
            max(key[0], new_tag)
            for table in tables.values()
            for key, new_tag in table.rules.items()
            if new_tag != LOSSY_TAG
        ),
        default=0,
    )
    # Injected packets always carry the initial tag, even when the
    # tables hold no lossless rules at all — the map must cover it.
    max_tag = max(max_tag, INITIAL_TAG)
    queue_map = QueueMap.identity(max_tag, max(8, max_tag))
    artifact = DeploymentArtifact(
        topo=topo, tables=tables, queue_map=queue_map
    )
    if fault in ARTIFACT_FAULTS:
        artifact = ARTIFACT_FAULTS[fault](artifact)
    lint = lint_artifact(artifact)
    result.stats["lint_diagnostics"] = len(lint.diagnostics)
    for diag in lint.errors[:5]:
        result.violations.append(Violation("lint-dirty", diag.render()))


def _check_clos(
    result: CrossCheckResult, topo, elp, budget: int, fault: Optional[str]
) -> None:
    tagger = ClosTagger(topo, max_bounces=budget)
    if fault in CLOS_FAULTS:
        tagger = CLOS_FAULTS[fault](tagger)
    graph = tagger.tagged_graph()
    report = verify_tagged_graph(graph)
    result.stats["clos_tags"] = report.num_tags
    if not report.deadlock_free:
        result.violations.append(Violation("clos-unsafe", _summary(report)))
    if report.num_tags != budget + 1:
        result.violations.append(
            Violation(
                "clos-tag-count",
                f"expected exactly {budget + 1} lossless tags "
                f"(k + 1), got {report.num_tags}",
            )
        )
    for path in elp.paths:
        expected = count_bounces(topo, path) <= budget
        actual = tagger.path_stays_lossless(path)
        if actual != expected:
            result.violations.append(
                Violation(
                    "clos-coverage",
                    f"path {path} lossless={actual}, "
                    f"bounce count says {expected}",
                )
            )
            break


def _replan_provider(scenario: Scenario) -> Optional[PairwiseElpProvider]:
    """Pairwise provider reproducing the scenario's ELP, if one exists.

    The incremental planner consumes pair-decomposable ELPs only (its
    locality contract, see :class:`~repro.core.elp.PairwiseElpProvider`).
    Bounce, BCube, random-extra-path, and explicit-path scenarios are
    outside that input space and skip the check — not a violation.
    """
    if scenario.explicit_paths is not None:
        return None
    if scenario.elp_kind == "updown":
        return UpDownElpProvider()
    if (
        scenario.elp_kind == "shortest"
        and not scenario.elp_params.get("extra_random_paths", 0)
    ):
        return ShortestPathElpProvider(
            explicit_endpoints=scenario.elp_params.get("endpoints"),
            per_pair=scenario.elp_params.get("per_pair", 1),
        )
    return None


def _check_symmetry(
    result: CrossCheckResult, scenario: Scenario, fault: Optional[str]
) -> None:
    """Differential check of the symmetry enumeration strategy.

    Plans the scenario twice through :meth:`TaggerPlan.from_provider` —
    once under the default symmetry strategy (closed-form orbit
    replication when the topology certifies, exhaustive degradation
    otherwise) and once with enumeration forced exhaustive — and demands
    byte-identical rule tables and tagged graphs. Refusals must also
    agree: if one strategy rejects the scenario (e.g. empty ELP), the
    other must reject it too. A symmetry-stage fault corrupts the
    symmetry plan after the fact; the oracle must flag the divergence.
    """
    provider = _replan_provider(scenario)
    if provider is None:
        result.stats["symmetry"] = "skipped: ELP not pair-decomposable"
        return
    sym_error: Optional[str] = None
    exh_error: Optional[str] = None
    sym = exh = None
    try:
        sym = TaggerPlan.from_provider(
            scenario.build_topology(), provider, strategy=STRATEGY_SYMMETRY
        )
    except ReproError as exc:
        sym_error = str(exc)
    try:
        exh = TaggerPlan.from_provider(
            scenario.build_topology(), provider, strategy=STRATEGY_EXHAUSTIVE
        )
    except ReproError as exc:
        exh_error = str(exc)
    if sym_error is not None or exh_error is not None:
        if sym_error == exh_error:
            result.stats["symmetry"] = f"skipped: both refused ({sym_error})"
            return
        result.violations.append(
            Violation(
                "symmetry-divergence",
                f"strategies disagree on refusal: "
                f"symmetry={sym_error!r}, exhaustive={exh_error!r}",
            )
        )
        return
    assert sym is not None and exh is not None
    if fault in SYMMETRY_FAULTS:
        SYMMETRY_FAULTS[fault](sym)
    if not tables_equal(sym.tables, exh.tables):
        result.violations.append(
            Violation(
                "symmetry-divergence",
                "symmetry-strategy rule tables differ from exhaustive "
                "enumeration",
            )
        )
        return
    if sym.graph != exh.graph:
        result.violations.append(
            Violation(
                "symmetry-divergence",
                "symmetry-strategy tagged graph differs from exhaustive "
                "enumeration",
            )
        )
        return
    mode = "certified" if sym.meta.get("certified") else "degraded"
    result.stats["symmetry"] = f"checked ({mode})"


def _replan_flap_link(
    planner: IncrementalPlanner,
) -> Optional[Tuple[str, str]]:
    """First ELP-carrying switch link whose failure keeps switches connected."""
    topo = planner.topo
    used: Set[Tuple[str, str]] = set()
    for path in planner.elp_paths():
        for a, b in zip(path, path[1:]):
            if topo.node(a).is_switch and topo.node(b).is_switch:
                used.add((a, b) if a <= b else (b, a))
    for a, b in sorted(used):
        topo.fail_link(a, b)
        connected = _switches_connected(topo)
        topo.restore_link(a, b)
        if connected:
            return (a, b)
    return None


def _check_replan(
    result: CrossCheckResult, scenario: Scenario, fault: Optional[str]
) -> None:
    """Differential check of the incremental re-planner.

    Builds an :class:`IncrementalPlanner` on a fresh copy of the
    scenario, flaps one connectivity-safe ELP-carrying link (down, then
    back up), and demands byte-identical rule tables and tagged graph
    versus a from-scratch plan after every step. A replan-stage fault
    replaces the healthy delta application with a buggy one; the oracle
    must then flag the divergence.
    """
    provider = _replan_provider(scenario)
    if provider is None:
        result.stats["replan"] = "skipped: ELP not pair-decomposable"
        return
    topo = scenario.build_topology()
    try:
        planner = IncrementalPlanner(topo, provider)
    except ReproError as exc:
        result.violations.append(
            Violation(
                "incremental-divergence",
                f"initial incremental build failed: {exc}",
            )
        )
        return
    link = _replan_flap_link(planner)
    if link is None:
        result.stats["replan"] = "skipped: no safe link to flap"
        return
    down = TopologyDelta.link_down(*link)
    for delta in (down, down.inverse()):
        try:
            if fault in REPLAN_FAULTS:
                REPLAN_FAULTS[fault](planner, delta)
            else:
                planner.apply(delta)
        except ReproError as exc:
            # Equivalence covers refusal too: if the incremental engine
            # cannot re-plan (e.g. the flap emptied the ELP), the
            # from-scratch pipeline must refuse the same state.
            try:
                planner.scratch_plan()
            except ReproError:
                result.stats["replan"] = (
                    f"skipped after {delta.describe()}: {exc}"
                )
                return
            result.violations.append(
                Violation(
                    "incremental-divergence",
                    f"incremental apply refused {delta.describe()} "
                    f"({exc}) but from-scratch planning succeeded",
                )
            )
            return
        try:
            scratch = planner.scratch_plan()
        except ReproError as exc:
            result.violations.append(
                Violation(
                    "incremental-divergence",
                    f"from-scratch planning failed after incremental "
                    f"{delta.describe()} succeeded: {exc}",
                )
            )
            return
        if not tables_equal(planner.plan.tables, scratch.tables):
            result.violations.append(
                Violation(
                    "incremental-divergence",
                    f"after {delta.describe()}: incremental rule tables "
                    f"differ from from-scratch tables",
                )
            )
            return
        if planner.plan.graph != scratch.graph:
            result.violations.append(
                Violation(
                    "incremental-divergence",
                    f"after {delta.describe()}: incremental tagged graph "
                    f"differs from from-scratch graph",
                )
            )
            return
    result.stats["replan"] = f"checked (flapped {link[0]}<->{link[1]})"


def _check_deploy(
    result: CrossCheckResult, scenario: Scenario, fault: Optional[str]
) -> None:
    """Rollout invariant: a benign fault schedule must still converge.

    Re-plans the scenario across one link failure, then pushes the
    resulting diff onto a fresh agent fleet through a *benign* seeded
    fault schedule — finite timeouts, crashes, partial batches,
    duplicates and reorders, but no permanently wedged switch. Under
    those conditions the orchestrator has no excuse: the rollout must
    end ``converged``, byte-identical to the target plan, with
    lint-clean final tables (``deployment-divergence`` otherwise). A
    deploy-stage fault installs a buggy agent first; divergence then
    *must* be flagged, proving readback verification is load-bearing.
    Rollback and quarantine paths are exercised by the unit/chaos tests,
    not here — accepting a "clean rollback" would let an agent that
    applies nothing and acks anyway pass as a no-op rollout.
    """
    from repro.core.rules import RuleTable, diff_tables
    from repro.deploy import (
        CONVERGED,
        REFUSED,
        RolloutConfig,
        RolloutOrchestrator,
        fleet_from_tables,
        random_fault_plan,
    )

    provider = _replan_provider(scenario)
    if provider is None:
        result.stats["deploy"] = "skipped: ELP not pair-decomposable"
        return
    topo = scenario.build_topology()
    try:
        planner = IncrementalPlanner(topo, provider)
    except ReproError:
        # Initial build failures are _check_replan's to report.
        result.stats["deploy"] = "skipped: initial build failed"
        return
    link = _replan_flap_link(planner)
    if link is None:
        result.stats["deploy"] = "skipped: no safe link to flap"
        return
    old = {
        switch: RuleTable(
            switch=switch, rules=dict(table.rules), policy=table.policy
        )
        for switch, table in planner.plan.tables.items()
    }
    try:
        planner.apply(TopologyDelta.link_down(*link))
    except ReproError:
        result.stats["deploy"] = "skipped: replan refused the flap"
        return
    new = dict(planner.plan.tables)
    diffs = diff_tables(old, new)
    if not diffs:
        result.stats["deploy"] = "skipped: empty diff"
        return

    agents = fleet_from_tables(
        old, extra_switches=tuple(sorted(set(new) - set(old)))
    )
    if fault in DEPLOY_FAULTS:
        DEPLOY_FAULTS[fault](
            {s: agents[s] for s in sorted(diffs) if s in agents}
        )
    faults_plan = random_fault_plan(
        sorted(diffs), seed=scenario.seed, rate=0.3
    )
    config = RolloutConfig(lint_boundaries=False, seed=scenario.seed)
    report = RolloutOrchestrator(
        planner.topo,
        old,
        new,
        config=config,
        agents=agents,
        faults=faults_plan,
    ).run()
    if report.outcome == REFUSED:
        # Pre-flight refusal: the mixed old/new transition state is not
        # certifiable deadlock-free under any wave ordering, so the
        # orchestrator never sent an RPC. That is the safety gate working,
        # not a divergence — and since no agent was touched, a refusal can
        # never mask the buggy-agent readback check below.
        result.stats["deploy"] = f"skipped: rollout refused ({report.detail})"
        return
    report_ok = (
        report.outcome == CONVERGED
        and report.final_lint_ok
        and report.final_matches_target
    )
    if not report_ok:
        result.violations.append(
            Violation(
                "deployment-divergence",
                f"benign rollout ended {report.outcome!r} "
                f"(lint_ok={report.final_lint_ok}, "
                f"matches_target={report.final_matches_target}): "
                f"{report.detail}",
            )
        )
        return
    result.stats["deploy"] = (
        f"checked ({len(diffs)} switch diff, {report.rpc_count} rpcs)"
    )
