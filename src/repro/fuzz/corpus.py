"""Regression corpus: shrunk counterexamples committed under
``tests/corpus/`` and replayed forever by ``tests/fuzz/test_corpus.py``.

Each entry is one JSON file:

.. code-block:: json

    {
      "format": 1,
      "id": "9f2c41d07a3b",
      "inject_fault": "skip-r2",
      "violations": ["greedy-unsafe"],
      "found_by": {"seed": 7, "iteration": 12},
      "scenario": { ... }
    }

``inject_fault`` records which artificial bug (if any) the entry
witnesses: replaying *with* the fault must reproduce the recorded
violations (the harness still catches the bug), replaying *without* it
must be clean (the healthy taggers still pass). Entries with
``inject_fault: null`` are real bugs — those must replay clean after the
fix that closed them.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ReproError
from repro.fuzz.scenarios import Scenario

FORMAT_VERSION = 1


@dataclass
class CorpusEntry:
    """One committed counterexample."""

    scenario: Scenario
    violations: List[str]
    inject_fault: Optional[str] = None
    found_by: Dict[str, Any] = field(default_factory=dict)
    entry_id: str = ""
    path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FORMAT_VERSION,
            "id": self.entry_id,
            "inject_fault": self.inject_fault,
            "violations": sorted(self.violations),
            "found_by": dict(self.found_by),
            "scenario": self.scenario.to_dict(),
        }


def entry_id_for(scenario: Scenario, inject_fault: Optional[str]) -> str:
    """Stable content hash so identical counterexamples dedupe."""
    canonical = json.dumps(
        {"scenario": scenario.to_dict(), "fault": inject_fault},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def save_entry(
    corpus_dir: str,
    scenario: Scenario,
    violations: List[str],
    inject_fault: Optional[str] = None,
    found_by: Optional[Dict[str, Any]] = None,
) -> CorpusEntry:
    """Write (or overwrite, idempotently) one corpus entry file."""
    os.makedirs(corpus_dir, exist_ok=True)
    entry = CorpusEntry(
        scenario=scenario,
        violations=sorted(violations),
        inject_fault=inject_fault,
        found_by=found_by or {},
        entry_id=entry_id_for(scenario, inject_fault),
    )
    entry.path = os.path.join(corpus_dir, f"{entry.entry_id}.json")
    with open(entry.path, "w", encoding="utf-8") as handle:
        json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entry


def load_entry(path: str) -> CorpusEntry:
    with open(path, "r", encoding="utf-8") as handle:
        blob = json.load(handle)
    if blob.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"corpus entry {path} has unsupported format {blob.get('format')!r}"
        )
    return CorpusEntry(
        scenario=Scenario.from_dict(blob["scenario"]),
        violations=list(blob.get("violations", [])),
        inject_fault=blob.get("inject_fault"),
        found_by=dict(blob.get("found_by", {})),
        entry_id=blob.get("id", ""),
        path=path,
    )


def load_corpus(corpus_dir: str) -> List[CorpusEntry]:
    """All entries in a corpus directory, sorted by id."""
    if not os.path.isdir(corpus_dir):
        return []
    entries = []
    for name in sorted(os.listdir(corpus_dir)):
        if name.endswith(".json"):
            entries.append(load_entry(os.path.join(corpus_dir, name)))
    return entries
